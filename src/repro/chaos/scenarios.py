"""The chaos scenario vocabulary, shared by the live harness and the differ.

Each scenario here is one named fault story -- *kill a helper mid-chain*,
*partition a link*, *a latency storm*, *one slow straggler*, *lose the
coordinator and bring it back* -- expressed three ways from one seed:

1. a **live fault timeline** (:class:`FaultEvent` list) the chaos runner
   replays against a real :class:`~repro.service.deployment.LocalDeployment`
   through TCP proxies and process signals;
2. a **twin degradation** (:class:`~repro.cluster.deployment.TwinDegradation`)
   the simulator applies to the deployment's
   :meth:`~repro.cluster.deployment.DeploymentSpec.degraded_cluster`; and
3. **runtime axes** the conformance differ maps onto its long-horizon
   simulated chaos matrix, so the same vocabulary stresses both halves of
   the repo.

Everything is deterministic in ``(scenario, seed)``:
:func:`compile_scenario` draws every target and knob through
:func:`~repro.exp.seeds.derive_seed`, and the compiled form exposes a
canonical JSON digest the test suite pins.

Predictions are in *live* units: the runner measures one healthy baseline
repair, :func:`calibrate_bandwidth` solves for the twin bandwidth that
reproduces it on loopback, and each scenario's :meth:`~ChaosScenario.predict_seconds`
combines the degraded twin's makespan with the timeline's own constants
(restart and heal times).  The measured/predicted ratio is then checked
against the committed tolerance band in ``BENCH_chaos.json``.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.deployment import DeploymentSpec, TwinDegradation
from repro.codes.rs import RSCode
from repro.core.request import RepairRequest, StripeInfo
from repro.exp.seeds import derive_seed
from repro.runtime.runtime import make_scheme
from repro.service.helper import DEFAULT_HEARTBEAT_INTERVAL
from repro.service.placement import rotated_placement
from repro.service.scanner import DEFAULT_GRACE, DEFAULT_SCAN_INTERVAL

#: Node name the simulation twin uses for the gateway/requestor.
GATEWAY_NODE = "gateway"

#: Seed namespace: every scenario draw derives from
#: ``derive_seed(seed, f"{SEED_NAMESPACE}:{name}", 0)``.
SEED_NAMESPACE = "chaos-live"

#: Fault-event verbs the runner's injector understands.
ACTIONS = ("kill", "restart", "partition", "heal", "delay", "rate")

#: Target name meaning the coordinator role (everything else is a helper).
COORDINATOR = "coordinator"

#: Detection-to-dispatch lag of the self-healing scanner, seconds: a
#: restarted-empty helper must beat once before its inventory gap is even
#: visible, the gap must outlive the scanner's grace window, and the next
#: scan tick must pick it up.  Summed from the same defaults the live
#: ``REPRO_*`` knobs start from, so the prediction and the cluster move
#: together when the knobs do.
AUTO_REPAIR_LAG = DEFAULT_HEARTBEAT_INTERVAL + DEFAULT_GRACE + DEFAULT_SCAN_INTERVAL

#: Valid coordinator-recovery modes of a compiled scenario.
RECOVERY_MODES = ("host", "store")


@dataclass(frozen=True)
class ChaosConfig:
    """Workload shape of one chaos run (scenarios draw faults, not shape)."""

    n: int = 5
    k: int = 3
    block_size: int = 1 << 20
    slice_size: int = 64 * 1024
    scheme: str = "rp"
    #: Multiplies every event time; tests shrink it together with
    #: ``block_size`` to keep runs fast.
    time_scale: float = 1.0
    #: Closed-loop foreground readers kept running through the fault window.
    load_concurrency: int = 1
    #: Healthy timed repairs used to calibrate the twin (median taken).
    baseline_repeats: int = 3
    payload_seed: int = 13
    stripe_id: int = 1
    spec: DeploymentSpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n <= self.k or self.k <= 0:
            raise ValueError("need n > k > 0")
        if self.block_size <= 0 or self.slice_size <= 0:
            raise ValueError("block_size and slice_size must be positive")
        if self.slice_size > self.block_size:
            raise ValueError("slice_size cannot exceed block_size")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.baseline_repeats <= 0:
            raise ValueError("baseline_repeats must be positive")
        if self.spec is None:
            object.__setattr__(self, "spec", DeploymentSpec.local(self.n))
        if self.spec.num_helpers != self.n:
            # Blocks and helpers must be a bijection (the gateway's rotated
            # placement, shared via repro.service.placement); scenarios rely
            # on it to name kill targets.
            raise ValueError(
                f"deployment has {self.spec.num_helpers} helpers, need exactly n={self.n}"
            )

    def code_spec(self) -> Dict[str, object]:
        return {"family": "rs", "n": self.n, "k": self.k}

    def payload(self) -> bytes:
        """The seeded object stored for the run (fills ``k`` blocks)."""
        return random.Random(self.payload_seed).randbytes(self.k * self.block_size)

    def placement(self) -> Dict[int, str]:
        """Block index -> node, exactly as the live gateway places them."""
        return rotated_placement(self.stripe_id, self.n, self.spec.helpers)

    def node_block(self, node: str) -> int:
        """Stripe-local block index stored on ``node``."""
        for block, owner in self.placement().items():
            if owner == node:
                return block
        raise KeyError(f"no block placed on node {node!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "k": self.k,
            "block_size": self.block_size,
            "slice_size": self.slice_size,
            "scheme": self.scheme,
            "time_scale": self.time_scale,
            "load_concurrency": self.load_concurrency,
            "baseline_repeats": self.baseline_repeats,
            "payload_seed": self.payload_seed,
            "stripe_id": self.stripe_id,
            "helpers": sorted(self.spec.helpers),
        }


@dataclass(frozen=True)
class FaultEvent:
    """One step of a live fault timeline."""

    at: float
    action: str
    target: str
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}; expected one of {ACTIONS}")
        if self.action in ("delay", "rate") and (self.value is None or self.value <= 0):
            raise ValueError(f"{self.action} event requires a positive value")

    def to_dict(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "action": self.action,
            "target": self.target,
            "value": self.value,
        }


@dataclass(frozen=True)
class CompiledScenario:
    """One scenario compiled for one ``(config, seed)`` -- pure data.

    The live side replays :attr:`events`; the twin side applies
    :attr:`degradation`; both honour :attr:`exclude` while the fault is
    active.  :meth:`digest` is the canonical-JSON fingerprint the
    determinism tests pin.
    """

    name: str
    seed: int
    config: Dict[str, object]
    events: Tuple[FaultEvent, ...]
    degradation: TwinDegradation
    #: Helper nodes unusable during the fault window (planner exclusions).
    exclude: Tuple[str, ...] = ()
    #: Blocks lost to killed helpers, needing re-repair after restart.
    lost_blocks: Tuple[int, ...] = ()
    #: Whether foreground reads are expected to keep (mostly) serving.
    expect_serving: bool = True
    #: When true, the runner issues *no* client repairs at all: heartbeat
    #: detection plus the coordinator's repair scanner must restore full
    #: redundancy on their own, and the runner only polls for it.
    auto_repair: bool = False
    #: How a restarted coordinator gets its metadata back: ``"host"`` --
    #: the runner replays helper and stripe registrations (the
    #: pre-durability contract) -- or ``"store"`` -- the coordinator
    #: recovers from its persistent metadata store alone.
    recovery: str = "host"

    def __post_init__(self) -> None:
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_MODES}, got {self.recovery!r}"
            )

    @property
    def horizon(self) -> float:
        """Time of the last timeline event."""
        return max((event.at for event in self.events), default=0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "config": dict(self.config),
            "events": [event.to_dict() for event in self.events],
            "degradation": {
                "node_bandwidth": {
                    node: bandwidth
                    for node, bandwidth in sorted(self.degradation.node_bandwidth.items())
                },
                "link_bandwidth": {
                    f"{src}->{dst}": bandwidth
                    for (src, dst), bandwidth in sorted(
                        self.degradation.link_bandwidth.items()
                    )
                },
                "extra_transfer_overhead": self.degradation.extra_transfer_overhead,
                "exclude": list(self.degradation.exclude),
            },
            "exclude": list(self.exclude),
            "lost_blocks": list(self.lost_blocks),
            "expect_serving": self.expect_serving,
            "auto_repair": self.auto_repair,
            "recovery": self.recovery,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form (determinism fingerprint)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- prediction
def twin_repair_seconds(
    config: ChaosConfig,
    bandwidth: float,
    degradation: Optional[TwinDegradation] = None,
    failed: Tuple[int, ...] = (0,),
) -> float:
    """Simulated makespan of repairing ``failed`` on the (degraded) twin."""
    cluster = config.spec.degraded_cluster(degradation, network_bandwidth=bandwidth)
    cluster.add_node(GATEWAY_NODE)
    stripe = StripeInfo(
        RSCode(config.n, config.k),
        config.placement(),
        stripe_id=config.stripe_id,
    )
    request = RepairRequest(
        stripe, list(failed), GATEWAY_NODE, config.block_size, config.slice_size
    )
    return make_scheme(config.scheme).repair_time(request, cluster).makespan


def calibrate_bandwidth(
    config: ChaosConfig,
    baseline_seconds: float,
    iterations: int = 4,
) -> float:
    """Solve for the twin bandwidth reproducing a measured healthy repair.

    Loopback TCP is not the paper's 1 Gb/s testbed, so absolute twin
    seconds are meaningless until the twin is re-based on a live
    measurement.  The makespan is dominated by ``bytes / bandwidth`` terms,
    so the fixed point of ``bw <- bw * simulated(bw) / measured`` converges
    in a few iterations; fixed overheads keep it from being exact, which is
    what the tolerance band absorbs.
    """
    if baseline_seconds <= 0:
        raise ValueError("baseline_seconds must be positive")
    bandwidth = config.spec.cluster_spec.network_bandwidth
    for _ in range(iterations):
        simulated = twin_repair_seconds(config, bandwidth)
        bandwidth = min(max(bandwidth * simulated / baseline_seconds, 1e6), 1e12)
    return bandwidth


# ---------------------------------------------------------------- scenarios
class ChaosScenario:
    """One named fault story; subclasses draw the compiled form."""

    #: Registry key and CLI name.
    name = "base"
    #: One-line story, shown by ``python -m repro.chaos list``.
    summary = ""

    def rng(self, seed: int) -> random.Random:
        return random.Random(derive_seed(seed, f"{SEED_NAMESPACE}:{self.name}", 0))

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        raise NotImplementedError

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        """Predicted live makespan of the fault window, calibrated units.

        ``anchors`` maps ``(action, target)`` to the *observed* completion
        time of that timeline event (seconds from the window start).  The
        twin predicts repair dynamics; when recovery is gated on an
        environmental latency the twin cannot know -- chiefly how long a
        ``restart`` takes to respawn an OS process -- the prediction anchors
        on the measured event time instead of the scripted one, exactly as
        the bandwidth itself is calibrated from a measured baseline.
        Without anchors the scripted times are used (the compile-time
        approximation).
        """
        raise NotImplementedError

    def _event_time(
        self,
        compiled: CompiledScenario,
        action: str,
        anchors: Optional[Dict[Tuple[str, str], float]],
    ) -> float:
        """Observed (anchored) or scripted time of the last ``action`` event."""
        scripted = max(e.at for e in compiled.events if e.action == action)
        if not anchors:
            return scripted
        observed = [
            anchors[(e.action, e.target)]
            for e in compiled.events
            if e.action == action and (e.action, e.target) in anchors
        ]
        return max(observed) if observed else scripted

    def runtime_axes(self) -> Dict[str, object]:
        """The same hostile axis in the sim runtime's scenario vocabulary.

        Used by :func:`repro.conformance.differ.live_vocabulary_scenarios`
        to point the differential matrix at the axes the live harness
        exercises.
        """
        return {}

    def _chain_targets(self, config: ChaosConfig) -> Tuple[str, ...]:
        """Helpers whose *ingress* carries slice traffic for block-0 repairs.

        With ``greedy=False`` both planners pick the lowest-indexed ``k``
        surviving blocks as helpers, so the chain for block 0 runs over the
        nodes holding blocks ``1..k`` (the gateway's rotated placement).
        Hop 1's ingress sees only the CHAIN control frame (it reads its
        block locally), so faults that must touch the data path target the
        nodes of blocks 2..k.
        """
        placement = config.placement()
        return tuple(placement[block] for block in range(2, config.k + 1))


class KillMidChain(ChaosScenario):
    """Rate-limit one chain helper, ``kill -9`` it mid-transfer, restart it."""

    name = "kill-mid-chain"
    summary = (
        "a chain helper is slowed, SIGKILLed mid-repair and restarted empty; "
        "the repair must re-plan around it and re-repair its lost block"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        target = rng.choice(self._chain_targets(config))
        crawl = rng.choice((2e6, 4e6))
        ts = config.time_scale
        kill_at = 0.12 * ts
        restart_at = 0.45 * ts
        events = (
            FaultEvent(0.0, "rate", target, crawl),
            FaultEvent(kill_at, "kill", target),
            FaultEvent(restart_at, "restart", target),
            FaultEvent(restart_at, "heal", target),
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(exclude=(target,)),
            exclude=(target,),
            lost_blocks=(config.node_block(target),),
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        # Block 0 re-repairs around the dead helper as soon as the chain
        # dies; the killed helper's own block can only be written back once
        # it is up again, so the restart dominates.
        restart_at = self._event_time(compiled, "restart", anchors)
        healthy = twin_repair_seconds(config, bandwidth)
        return max(healthy, restart_at + healthy)

    def runtime_axes(self) -> Dict[str, object]:
        # Rapid permanent kill/rejoin churn: nodes die for real and come
        # back empty, exactly the live story.
        return {
            "mean_failure_interarrival": 900.0,
            "transient_fraction": 0.0,
            "node_rejoin_seconds": 600.0,
        }


class LinkPartition(ChaosScenario):
    """Partition one helper's ingress link, then heal it."""

    name = "link-partition"
    summary = (
        "one helper's link is partitioned and later heals; repairs re-plan "
        "around it and full redundancy waits for the heal"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        block0_node = config.placement()[0]
        # Never block 0's node: its block is the erased repair workload.
        target = rng.choice(
            [node for node in sorted(config.spec.helpers) if node != block0_node]
        )
        heal_at = 0.6 * config.time_scale
        events = (
            FaultEvent(0.0, "partition", target),
            FaultEvent(heal_at, "heal", target),
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(exclude=(target,)),
            exclude=(target,),
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        # The repair itself routes around the partition; *redundancy* is
        # only whole again once the partitioned replica is reachable.
        heal_at = self._event_time(compiled, "heal", anchors)
        return max(heal_at, twin_repair_seconds(config, bandwidth))

    def runtime_axes(self) -> Dict[str, object]:
        # Pure transient outages: nodes vanish with their data intact.
        return {
            "transient_fraction": 1.0,
            "transient_duration_mean": 600.0,
            "mean_failure_interarrival": 1800.0,
        }


class LatencyStorm(ChaosScenario):
    """Add per-chunk latency on every helper link for the whole window."""

    name = "latency-storm"
    summary = (
        "every helper link gains fixed per-chunk latency; repairs slow by "
        "the per-transfer overhead the twin models"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        delay = rng.choice((0.002, 0.004, 0.006))
        events = tuple(
            FaultEvent(0.0, "delay", node, delay)
            for node in sorted(config.spec.helpers)
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(extra_transfer_overhead=delay),
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        return twin_repair_seconds(config, bandwidth, compiled.degradation)

    def runtime_axes(self) -> Dict[str, object]:
        # Heavy foreground contention is the runtime's latency analogue.
        return {"foreground_rate": 0.05, "read_distribution": "zipf"}


class SlowHelper(ChaosScenario):
    """Rate-limit one in-chain helper -- the straggler of section 5."""

    name = "slow-helper"
    summary = (
        "one chain helper is throttled to a crawl; the pipelined repair is "
        "bottlenecked at exactly that link, as the twin predicts"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        target = rng.choice(self._chain_targets(config))
        rate = rng.choice((4e6, 8e6))
        events = (FaultEvent(0.0, "rate", target, rate),)
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(node_bandwidth={target: rate}),
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        return twin_repair_seconds(config, bandwidth, compiled.degradation)

    def runtime_axes(self) -> Dict[str, object]:
        # Per-node repair throttling is the runtime's straggler knob.
        return {"repair_bandwidth_cap": 20e6}


class KillCoordinatorRestart(ChaosScenario):
    """Kill the control plane, restart it empty, recover, repair."""

    name = "kill-coordinator-restart"
    summary = (
        "the coordinator is SIGKILLed and restarted with no metadata; the "
        "host re-registers helpers and stripes before repair can proceed"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        ts = config.time_scale
        events = (
            # Kill at the window start: recovery (and the redundancy poll's
            # LOCATE probes) must find the control plane already dead, so
            # the measured makespan is gated on the restart rather than
            # racing it -- a race repairs now win, since a store-backed
            # coordinator recovers in milliseconds.
            FaultEvent(0.0, "kill", COORDINATOR),
            FaultEvent(0.5 * ts, "restart", COORDINATOR),
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(),
            expect_serving=False,
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        restart_at = self._event_time(compiled, "restart", anchors)
        return restart_at + twin_repair_seconds(config, bandwidth)

    def runtime_axes(self) -> Dict[str, object]:
        # A long detection delay is the runtime's control-plane blind spot.
        return {"detection_delay": 600.0}


class KillHelperAutoRepair(ChaosScenario):
    """Kill a helper; nobody calls repair -- the control plane must."""

    name = "kill-helper-auto-repair"
    summary = (
        "a chain helper is SIGKILLed and restarted empty with NO client "
        "repair issued; heartbeat detection and the coordinator's repair "
        "scanner must restore full redundancy on their own"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        target = rng.choice(self._chain_targets(config))
        ts = config.time_scale
        events = (
            FaultEvent(0.05 * ts, "kill", target),
            FaultEvent(0.6 * ts, "restart", target),
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(exclude=(target,)),
            exclude=(target,),
            lost_blocks=(config.node_block(target),),
            auto_repair=True,
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        # The scanner cannot act on the restarted-empty helper before the
        # helper is back, has beaten once (making the inventory gap
        # visible), and the gap has outlived the grace window; the repair
        # after that is the healthy twin's.  The erased workload block
        # heals earlier, under the same lag measured from the window start,
        # so the restarted helper's block dominates the makespan.
        restart_at = self._event_time(compiled, "restart", anchors)
        return restart_at + AUTO_REPAIR_LAG + twin_repair_seconds(config, bandwidth)

    def runtime_axes(self) -> Dict[str, object]:
        # Self-healing is the runtime's *short* detection delay: losses are
        # noticed and repaired by the system, fast, with permanent kills
        # rejoining empty -- exactly the live story.
        return {
            "detection_delay": 30.0,
            "mean_failure_interarrival": 900.0,
            "transient_fraction": 0.0,
            "node_rejoin_seconds": 600.0,
        }


class PartitionDuringCoordinatorRestart(ChaosScenario):
    """Partition a helper, then bounce the coordinator: store-only recovery."""

    name = "partition-during-coordinator-restart"
    summary = (
        "one helper is partitioned while the coordinator is SIGKILLed and "
        "restarted; the host replays nothing -- recovery comes from the "
        "metadata store alone -- and redundancy waits for the heal"
    )

    def compile(self, config: ChaosConfig, seed: int) -> CompiledScenario:
        rng = self.rng(seed)
        block0_node = config.placement()[0]
        # Never block 0's node: its block is the erased repair workload.
        target = rng.choice(
            [node for node in sorted(config.spec.helpers) if node != block0_node]
        )
        ts = config.time_scale
        events = (
            FaultEvent(0.0, "partition", target),
            FaultEvent(0.05 * ts, "kill", COORDINATOR),
            FaultEvent(0.45 * ts, "restart", COORDINATOR),
            FaultEvent(0.7 * ts, "heal", target),
        )
        return CompiledScenario(
            name=self.name,
            seed=seed,
            config=config.to_dict(),
            events=events,
            degradation=TwinDegradation(exclude=(target,)),
            exclude=(target,),
            expect_serving=False,
            recovery="store",
        )

    def predict_seconds(
        self,
        compiled: CompiledScenario,
        config: ChaosConfig,
        bandwidth: float,
        anchors: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> float:
        # The repair routes around the partition but cannot outrun a dead
        # control plane; *redundancy* is whole only once the partitioned
        # replica is reachable again.  Store recovery is what makes the
        # restart anchor the only control-plane term: nothing is replayed.
        restart_at = self._event_time(compiled, "restart", anchors)
        heal_at = self._event_time(compiled, "heal", anchors)
        return max(heal_at, restart_at + twin_repair_seconds(config, bandwidth))

    def runtime_axes(self) -> Dict[str, object]:
        # Transient outages under a moderately blind control plane.
        return {
            "detection_delay": 120.0,
            "transient_fraction": 1.0,
            "transient_duration_mean": 600.0,
        }


#: Scenario registry, keyed by name (sorted iteration order is canonical).
SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        KillMidChain(),
        LinkPartition(),
        LatencyStorm(),
        SlowHelper(),
        KillCoordinatorRestart(),
        KillHelperAutoRepair(),
        PartitionDuringCoordinatorRestart(),
    )
}


def compile_scenario(
    name: str, config: ChaosConfig, seed: int
) -> CompiledScenario:
    """Compile one scenario by name (deterministic in ``(name, seed)``)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
    return scenario.compile(config, seed)


__all__ = [
    "ACTIONS",
    "AUTO_REPAIR_LAG",
    "COORDINATOR",
    "RECOVERY_MODES",
    "ChaosConfig",
    "ChaosScenario",
    "CompiledScenario",
    "FaultEvent",
    "GATEWAY_NODE",
    "SCENARIOS",
    "SEED_NAMESPACE",
    "calibrate_bandwidth",
    "compile_scenario",
    "twin_repair_seconds",
]
