"""Unit tests for Local Reconstruction Codes."""

import pytest

from repro.codes import LRCCode
from repro.codes.base import DecodeError
from conftest import random_payload


class TestStructure:
    def test_dimensions(self, lrc_12_2_2):
        assert lrc_12_2_2.n == 16
        assert lrc_12_2_2.k == 12
        assert lrc_12_2_2.num_local_groups == 2
        assert lrc_12_2_2.num_global_parities == 2
        assert lrc_12_2_2.group_size == 6

    def test_group_membership(self, lrc_12_2_2):
        assert lrc_12_2_2.group_of(0) == 0
        assert lrc_12_2_2.group_of(5) == 0
        assert lrc_12_2_2.group_of(6) == 1
        assert lrc_12_2_2.group_of(12) == 0  # local parity of group 0
        assert lrc_12_2_2.group_of(13) == 1
        assert lrc_12_2_2.group_of(14) is None  # global parity
        assert lrc_12_2_2.group_of(15) is None

    def test_group_block_lists(self, lrc_12_2_2):
        assert lrc_12_2_2.data_blocks_of_group(0) == [0, 1, 2, 3, 4, 5]
        assert lrc_12_2_2.data_blocks_of_group(1) == [6, 7, 8, 9, 10, 11]
        assert lrc_12_2_2.local_parity_of_group(0) == 12
        assert lrc_12_2_2.local_parity_of_group(1) == 13
        assert lrc_12_2_2.global_parity_indices() == [14, 15]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LRCCode(12, 5, 2)  # 5 does not divide 12
        with pytest.raises(ValueError):
            LRCCode(12, 0, 2)
        with pytest.raises(ValueError):
            LRCCode(12, 2, 0)

    def test_invalid_group_queries(self, lrc_12_2_2):
        with pytest.raises(ValueError):
            lrc_12_2_2.group_of(16)
        with pytest.raises(ValueError):
            lrc_12_2_2.data_blocks_of_group(2)
        with pytest.raises(ValueError):
            lrc_12_2_2.local_parity_of_group(-1)


class TestEncodeDecode:
    def test_local_parity_is_group_xor(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 64) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        expected = bytes(
            a ^ b ^ c ^ d ^ e ^ f
            for a, b, c, d, e, f in zip(*[data[i] for i in range(6)])
        )
        assert coded[12].tobytes() == expected

    def test_decode_single_erasure(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 64) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        available = {i: coded[i].tobytes() for i in range(16) if i != 4}
        decoded = lrc_12_2_2.decode(available)
        assert decoded[4].tobytes() == coded[4].tobytes()

    def test_decode_no_erasure(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 32) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        available = {i: coded[i].tobytes() for i in range(16)}
        decoded = lrc_12_2_2.decode(available)
        for i in range(16):
            assert decoded[i].tobytes() == coded[i].tobytes()

    def test_decode_unrecoverable_pattern_raises(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 32) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        # Five failures exceed what k=12 of 16 blocks plus structure can fix.
        failed = {0, 1, 2, 3, 6}
        available = {i: coded[i].tobytes() for i in range(16) if i not in failed}
        with pytest.raises(DecodeError):
            lrc_12_2_2.decode(available)

    def test_encode_validates_input(self, lrc_12_2_2):
        with pytest.raises(ValueError):
            lrc_12_2_2.encode([b"x"] * 11)
        with pytest.raises(ValueError):
            lrc_12_2_2.encode([b"xx"] * 11 + [b"x"])


class TestRepairPlans:
    def test_data_block_repairs_locally(self, lrc_12_2_2):
        plan = lrc_12_2_2.repair_plan([2])
        assert set(plan.helpers) == {0, 1, 3, 4, 5, 12}
        assert plan.coefficients == ((1,) * 6,)

    def test_second_group_repairs_locally(self, lrc_12_2_2):
        plan = lrc_12_2_2.repair_plan([9])
        assert set(plan.helpers) == {6, 7, 8, 10, 11, 13}

    def test_local_parity_repairs_locally(self, lrc_12_2_2):
        plan = lrc_12_2_2.repair_plan([13])
        assert set(plan.helpers) == {6, 7, 8, 9, 10, 11}

    def test_local_repair_reconstructs(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 80) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        plan = lrc_12_2_2.repair_plan([7])
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        assert repaired[7].tobytes() == coded[7].tobytes()

    def test_global_parity_uses_wider_helper_set(self, lrc_12_2_2):
        plan = lrc_12_2_2.repair_plan([14])
        assert plan.num_helpers >= 12

    def test_repair_read_count(self, lrc_12_2_2):
        assert lrc_12_2_2.repair_read_count(0) == 6
        assert lrc_12_2_2.repair_read_count(13) == 6
        assert lrc_12_2_2.repair_read_count(15) == 12

    def test_multi_failure_same_group_falls_back(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 48) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        plan = lrc_12_2_2.repair_plan([0, 1])
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        assert repaired[0].tobytes() == coded[0].tobytes()
        assert repaired[1].tobytes() == coded[1].tobytes()

    def test_local_repair_unavailable_falls_back_to_global(self, lrc_12_2_2, rng):
        data = [random_payload(rng, 48) for _ in range(12)]
        coded = lrc_12_2_2.encode(data)
        # Exclude the local parity so the local plan cannot be used.
        available = [i for i in range(16) if i not in (2, 12)]
        plan = lrc_12_2_2.repair_plan([2], available)
        assert 12 not in plan.helpers
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        assert repaired[2].tobytes() == coded[2].tobytes()
