"""Transport-agnostic repair-chain state machines.

The pipelined repair of section 3.2 pushes slice-sized partial results
through a linear chain of helpers ``N1 -> N2 -> ... -> Nk -> R``.  The
*protocol* of that chain -- which hop reads which block, in what order the
hops run for each slice, which coefficient each hop applies, and how the
requestor reassembles the slices -- is independent of how the bytes actually
move.  This module captures that protocol as plain value objects and pure
functions so that two transports can share it verbatim:

* the in-process :class:`repro.ecpipe.middleware.ECPipe` data plane, where a
  "transfer" is a dictionary hand-off, and
* the live asyncio service plane (:mod:`repro.service`), where the same plan
  is serialised into a wire header and each hop streams partial slices over
  a TCP connection.

Byte-exactness is the contract: because every combine is exact GF(2^8)
arithmetic driven by the same :class:`SliceChainPlan`, a block reconstructed
through either transport is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codes.base import RepairPlan
from repro.core.request import RepairRequest
from repro.gf.gf256 import gf_accumulate_into


@dataclass(frozen=True)
class ChainHop:
    """One hop of the repair chain: a helper block and where it lives.

    Attributes
    ----------
    block_index:
        Stripe-local index of the block this hop contributes.
    node:
        Name of the storage node holding the block.
    key:
        Storage key of the block on that node.
    """

    block_index: int
    node: str
    key: str

    def to_dict(self) -> Dict[str, object]:
        return {"block": self.block_index, "node": self.node, "key": self.key}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChainHop":
        return cls(int(data["block"]), str(data["node"]), str(data["key"]))


@dataclass(frozen=True)
class SliceChainPlan:
    """The complete, transport-agnostic protocol of one pipelined repair.

    A plan is a pure value: it can be built from a
    :class:`~repro.core.request.RepairRequest` plus the coordinator's chosen
    path (:meth:`build`), or deserialised from a wire header
    (:meth:`from_dict`) -- the live helpers never need the code object, only
    the coefficient rows.

    Attributes
    ----------
    stripe_id:
        Stripe being repaired.
    failed:
        Stripe-local indices of the blocks being reconstructed, in delivery
        order.
    hops:
        The ordered chain ``N1 .. Nk`` (position 0 starts the chain).
    coefficients:
        ``coefficients[j][p]`` is the GF(2^8) coefficient hop ``p`` applies
        to its local slice when reconstructing ``failed[j]``.
    slice_sizes:
        Per-slice byte counts (the last slice may be shorter).
    cyclic:
        When true the hop order rotates per slice (section 4.1); the linear
        chain of hops is reinterpreted per slice via :meth:`hop_order`.
    """

    stripe_id: int
    failed: Tuple[int, ...]
    hops: Tuple[ChainHop, ...]
    coefficients: Tuple[Tuple[int, ...], ...]
    slice_sizes: Tuple[int, ...]
    cyclic: bool = False

    def __post_init__(self) -> None:
        if not self.failed:
            raise ValueError("at least one failed block is required")
        if not self.hops:
            raise ValueError("at least one hop is required")
        if len(self.coefficients) != len(self.failed):
            raise ValueError("one coefficient row is required per failed block")
        for row in self.coefficients:
            if len(row) != len(self.hops):
                raise ValueError("coefficient rows must match the hop count")
        if not self.slice_sizes:
            raise ValueError("at least one slice is required")
        if any(size <= 0 for size in self.slice_sizes):
            raise ValueError("slice sizes must be positive")
        if self.cyclic and len(self.hops) < 2:
            raise ValueError("cyclic chaining needs at least two hops")

    # -------------------------------------------------------------- geometry
    @property
    def num_slices(self) -> int:
        """Number of slices pushed through the chain."""
        return len(self.slice_sizes)

    @property
    def num_failed(self) -> int:
        """Number of blocks reconstructed by the chain."""
        return len(self.failed)

    @property
    def block_size(self) -> int:
        """Total bytes of each reconstructed block."""
        return sum(self.slice_sizes)

    def slice_layout(self) -> List[Tuple[int, int]]:
        """``(offset, size)`` of every slice, in pipeline order."""
        layout: List[Tuple[int, int]] = []
        offset = 0
        for size in self.slice_sizes:
            layout.append((offset, size))
            offset += size
        return layout

    def hop_order(self, slice_index: int) -> List[int]:
        """Hop positions, in the order they run for ``slice_index``.

        Linear chains always run ``0 .. k-1``; cyclic chains rotate the
        starting hop by ``slice_index mod (k - 1)`` (section 4.1), spreading
        the last-hop send load across helpers during full-node recovery.
        """
        k = len(self.hops)
        if not self.cyclic:
            return list(range(k))
        start = slice_index % (k - 1)
        return [(start + i) % k for i in range(k)]

    def hop_coefficients(self, position: int) -> Tuple[int, ...]:
        """Coefficients hop ``position`` applies, one per failed block."""
        return tuple(row[position] for row in self.coefficients)

    def coefficient(self, failed_index: int, block_index: int) -> int:
        """Coefficient applied to ``block_index`` when repairing
        ``failed_index``."""
        j = self.failed.index(failed_index)
        for position, hop in enumerate(self.hops):
            if hop.block_index == block_index:
                return self.coefficients[j][position]
        raise KeyError(f"block {block_index} is not a hop of this chain")

    # --------------------------------------------------------------- factory
    @classmethod
    def build(
        cls,
        request: RepairRequest,
        path: Sequence[int],
        plan: RepairPlan,
        cyclic: bool = False,
        block_key=None,
    ) -> "SliceChainPlan":
        """Build the chain plan from a repair request and a chosen path.

        Parameters
        ----------
        request:
            The repair request (provides stripe placement and slice sizing).
        path:
            Ordered helper block indices (the coordinator's chosen chain).
        plan:
            The code's repair plan over exactly the blocks in ``path``.
        cyclic:
            Rotate the chain per slice (section 4.1).
        block_key:
            Key function ``(stripe_id, block_index) -> str``; defaults to
            the coordinator's canonical key.
        """
        if block_key is None:
            from repro.ecpipe.coordinator import block_key as default_block_key

            block_key = default_block_key
        stripe = request.stripe
        hops = tuple(
            ChainHop(
                block_index=i,
                node=stripe.location(i),
                key=block_key(stripe.stripe_id, i),
            )
            for i in path
        )
        coefficients = tuple(
            tuple(plan.coefficient_for(f, i) for i in path) for f in request.failed
        )
        return cls(
            stripe_id=stripe.stripe_id,
            failed=tuple(request.failed),
            hops=hops,
            coefficients=coefficients,
            slice_sizes=tuple(request.slice_sizes()),
            cyclic=cyclic,
        )

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe wire form (everything a remote hop needs)."""
        return {
            "stripe_id": self.stripe_id,
            "failed": list(self.failed),
            "hops": [hop.to_dict() for hop in self.hops],
            "coefficients": [list(row) for row in self.coefficients],
            "slice_sizes": list(self.slice_sizes),
            "cyclic": self.cyclic,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SliceChainPlan":
        return cls(
            stripe_id=int(data["stripe_id"]),
            failed=tuple(int(i) for i in data["failed"]),
            hops=tuple(ChainHop.from_dict(h) for h in data["hops"]),
            coefficients=tuple(
                tuple(int(c) for c in row) for row in data["coefficients"]
            ),
            slice_sizes=tuple(int(s) for s in data["slice_sizes"]),
            cyclic=bool(data["cyclic"]),
        )


def combine_partials(
    incoming: Optional[bytearray],
    coefficients: Sequence[int],
    local: bytes,
) -> bytearray:
    """One hop's combine step over the *packed* partial layout.

    The packed layout concatenates the ``f`` per-failed-block partial slices
    into one buffer of ``f * len(local)`` bytes -- the unit a live hop
    receives from upstream and forwards downstream in a single frame.  Each
    section ``j`` accumulates ``coefficients[j] * local`` in place (GF(2^8)
    multiply-XOR); ``incoming`` is ``None`` at the first hop of the chain.

    Returns the packed outgoing buffer (``incoming`` mutated in place when
    given, so no per-hop allocation on the steady path).
    """
    nbytes = len(local)
    if incoming is None:
        incoming = bytearray(nbytes * len(coefficients))
    elif len(incoming) != nbytes * len(coefficients):
        raise ValueError(
            f"packed partial of {len(incoming)} bytes does not match "
            f"{len(coefficients)} sections of {nbytes} bytes"
        )
    view = memoryview(incoming)
    for j, coeff in enumerate(coefficients):
        gf_accumulate_into(view[j * nbytes:(j + 1) * nbytes], coeff, local)
    return incoming


def split_packed(payload: bytes, num_sections: int) -> List[bytes]:
    """Split a packed partial buffer back into its per-failed sections."""
    if num_sections <= 0:
        raise ValueError("num_sections must be positive")
    total = len(payload)
    if total % num_sections:
        raise ValueError(
            f"packed payload of {total} bytes does not divide into "
            f"{num_sections} sections"
        )
    nbytes = total // num_sections
    return [bytes(payload[j * nbytes:(j + 1) * nbytes]) for j in range(num_sections)]


class BlockAssembler:
    """Reassembles a block from repaired slices arriving in any order.

    The in-process requestor receives slices strictly in offset order, but a
    live requestor may see deliveries interleaved across connections; the
    assembler accepts either, rejects duplicates and mismatched sizes, and
    only concatenates once every slice has arrived.
    """

    def __init__(self, slice_sizes: Sequence[int]) -> None:
        if not slice_sizes:
            raise ValueError("at least one slice is required")
        self._sizes = tuple(int(s) for s in slice_sizes)
        self._parts: Dict[int, bytes] = {}

    @property
    def num_slices(self) -> int:
        """Total number of slices expected."""
        return len(self._sizes)

    @property
    def received(self) -> int:
        """Number of slices received so far."""
        return len(self._parts)

    @property
    def complete(self) -> bool:
        """True once every slice has been received."""
        return len(self._parts) == len(self._sizes)

    def add(self, slice_index: int, data: bytes) -> None:
        """Record one repaired slice."""
        if not 0 <= slice_index < len(self._sizes):
            raise ValueError(
                f"slice index {slice_index} outside [0, {len(self._sizes)})"
            )
        if slice_index in self._parts:
            raise ValueError(f"slice {slice_index} delivered twice")
        if len(data) != self._sizes[slice_index]:
            raise ValueError(
                f"slice {slice_index} has {len(data)} bytes, "
                f"expected {self._sizes[slice_index]}"
            )
        self._parts[slice_index] = bytes(data)

    def assemble(self) -> bytes:
        """Concatenate the slices in offset order.

        Raises
        ------
        KeyError
            If any slice is still missing.
        """
        missing = [i for i in range(len(self._sizes)) if i not in self._parts]
        if missing:
            raise KeyError(f"slices {missing} have not been delivered")
        return b"".join(self._parts[i] for i in range(len(self._sizes)))
