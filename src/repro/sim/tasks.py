"""Task DAGs executed by the simulator.

A :class:`Task` is a unit of work (a disk read, a GF computation, or a network
transfer) that holds a set of :class:`repro.sim.resources.Port` objects for
``overhead + size / bottleneck_rate`` seconds once all of its dependencies
have completed.  A :class:`TaskGraph` is a DAG of tasks; repair schemes build
one task graph per repair and hand it to :class:`repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.resources import Port, effective_rate


class Task:
    """A schedulable unit of work.

    Parameters
    ----------
    name:
        Identifier used in traces; does not need to be unique.
    ports:
        Ports the task must hold simultaneously while it runs.
    size_bytes:
        Amount of data processed; divided by the bottleneck port rate to get
        the service time.
    overhead:
        Fixed seconds added to the service time (models RPC/request latency,
        disk seeks, thread hand-offs).
    kind:
        Free-form category tag (``"transfer"``, ``"disk"``, ``"compute"``)
        used by accounting and tests.
    """

    __slots__ = (
        "task_id",
        "name",
        "ports",
        "size_bytes",
        "overhead",
        "kind",
        "deps",
        "dependents",
        "unresolved_deps",
        "ready_time",
        "start_time",
        "finish_time",
        "batch",
        "wait_ports",
    )

    def __init__(
        self,
        name: str,
        ports: Sequence[Port],
        size_bytes: float = 0.0,
        overhead: float = 0.0,
        kind: str = "task",
    ) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.task_id: int = -1
        self.name = name
        self.ports: List[Port] = list(ports)
        self.size_bytes = float(size_bytes)
        self.overhead = float(overhead)
        self.kind = kind
        self.deps: List["Task"] = []
        self.dependents: List["Task"] = []
        self.unresolved_deps = 0
        self.ready_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: The batch the task currently belongs to (engine bookkeeping).
        self.batch = None
        #: Ports on which the task currently has a waiter-queue entry.
        self.wait_ports: List[Port] = []

    def duration(self) -> float:
        """Service time of the task once it starts."""
        rate = effective_rate(self.ports)
        if self.size_bytes == 0:
            return self.overhead
        return self.overhead + self.size_bytes / rate

    def after(self, *predecessors: "Task") -> "Task":
        """Declare that this task depends on the given predecessors.

        Returns ``self`` so that dependency declarations can be chained.
        ``None`` entries are ignored, which lets planners write
        ``task.after(maybe_previous)`` without special-casing the first
        element of a pipeline.
        """
        for pred in predecessors:
            if pred is None:
                continue
            if pred is self:
                raise ValueError("a task cannot depend on itself")
            self.deps.append(pred)
            pred.dependents.append(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, kind={self.kind!r}, size={self.size_bytes})"


class TaskGraph:
    """A DAG of tasks plus the ports they use."""

    def __init__(self) -> None:
        self._tasks: List[Task] = []
        #: Set by a successful :meth:`validate_acyclic`; cleared whenever the
        #: graph gains tasks, so the engine can skip revalidating graphs it
        #: has already proven acyclic (template clones in particular).
        self.validated = False
        #: True when every task's scheduling fields are already initialised
        #: for submission (template instantiation sets this); the engine's
        #: submit fast path consumes and clears it.
        self.prebound = False

    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def add(self, task: Task) -> Task:
        """Register a task and return it."""
        if task.task_id != -1:
            raise ValueError(f"task {task.name!r} already belongs to a graph")
        task.task_id = len(self._tasks)
        self._tasks.append(task)
        self.validated = False
        return task

    def add_task(
        self,
        name: str,
        ports: Sequence[Port],
        size_bytes: float = 0.0,
        overhead: float = 0.0,
        kind: str = "task",
        deps: Iterable[Task] = (),
    ) -> Task:
        """Create, register and wire up a task in one call."""
        task = Task(name, ports, size_bytes=size_bytes, overhead=overhead, kind=kind)
        self.add(task)
        task.after(*deps)
        return task

    def ports(self) -> List[Port]:
        """Return the distinct ports referenced by the graph."""
        seen: Dict[int, Port] = {}
        for task in self._tasks:
            for port in task.ports:
                seen.setdefault(id(port), port)
        return list(seen.values())

    def total_bytes(self, kind: Optional[str] = None) -> float:
        """Total bytes processed by tasks (optionally filtered by kind).

        For ``kind="transfer"`` this is the total repair traffic of the plan,
        the quantity repair-friendly codes minimise.
        """
        return sum(
            t.size_bytes for t in self._tasks if kind is None or t.kind == kind
        )

    def merge(self, other: "TaskGraph") -> None:
        """Append all tasks of ``other`` into this graph.

        The other graph's tasks are re-registered here; ``other`` must not be
        used afterwards.
        """
        for task in other._tasks:
            task.task_id = len(self._tasks)
            self._tasks.append(task)
        other._tasks = []
        self.validated = False

    def validate_acyclic(self) -> None:
        """Raise ``ValueError`` if the dependency graph contains a cycle.

        A successful validation is remembered (and invalidated by further
        ``add``/``merge`` calls), so repeated submissions of the same graph
        pay for the topological check once.
        """
        if self.validated:
            return
        indegree = {t.task_id: len(t.deps) for t in self._tasks}
        frontier = [t for t in self._tasks if indegree[t.task_id] == 0]
        visited = 0
        while frontier:
            task = frontier.pop()
            visited += 1
            for dep in task.dependents:
                indegree[dep.task_id] -= 1
                if indegree[dep.task_id] == 0:
                    frontier.append(dep)
        if visited != len(self._tasks):
            raise ValueError("task graph contains a dependency cycle")
        self.validated = True
