"""Erasure codes used throughout the reproduction.

The paper evaluates repair pipelining on three families of practical codes:

* :class:`repro.codes.rs.RSCode` -- classical Reed-Solomon codes, the default
  code of HDFS-RAID, HDFS-3 and QFS and of all main experiments.
* :class:`repro.codes.lrc.LRCCode` -- Azure-style Local Reconstruction Codes,
  used in the repair-friendly-code experiment (Figure 8(d)).
* :class:`repro.codes.rotated.RotatedRSCode` -- Rotated Reed-Solomon codes
  (Khan et al., FAST'12), also used in Figure 8(d).

All codes are systematic, linear over GF(2^8), and expose the same interface
(:class:`repro.codes.base.ErasureCode`): encode ``k`` data blocks into ``n``
coded blocks, decode from any sufficient subset, and -- most importantly for
this paper -- produce a :class:`repro.codes.base.RepairPlan` that lists which
helpers a repair reads and the decoding coefficient each helper applies to its
local block.
"""

from repro.codes.base import ErasureCode, RepairPlan
from repro.codes.lrc import LRCCode
from repro.codes.registry import code_from_spec, code_to_spec
from repro.codes.rotated import RotatedRSCode
from repro.codes.rs import RSCode

__all__ = [
    "ErasureCode",
    "RepairPlan",
    "RSCode",
    "LRCCode",
    "RotatedRSCode",
    "code_to_spec",
    "code_from_spec",
]
