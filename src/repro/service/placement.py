"""Stripe block placement shared by the live gateway and the chaos twin.

One function is the single source of truth for where the gateway puts the
blocks of a stripe, so everything that must agree with it -- the chaos
harness's simulated twin, its fault-target selection, tests asserting
distribution -- imports the same rotation instead of re-deriving it.

The rotation fixes two real placement bugs of the original gateway:

* block ``i`` of *every* stripe landed on ``sorted(helpers)[i]``, turning
  the block-0 holder into a hot spot for the whole cluster; rotating the
  start node by ``stripe_id`` spreads stripe heads evenly;
* when ``n`` exceeded the helper count, a stripe silently stacked several
  blocks on one node -- one machine failure then costs multiple blocks of
  the same stripe, violating the single-failure-domain invariant every
  repair plan assumes.  Stacking now raises unless explicitly opted into
  (``REPRO_ALLOW_STACKED_PLACEMENT=1``, for single-node toy deployments).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional

#: Opt-in knob allowing ``n > len(helpers)`` placements to stack blocks.
ALLOW_STACKED_ENV = "REPRO_ALLOW_STACKED_PLACEMENT"


def rotated_placement(
    stripe_id: int,
    n: int,
    nodes: Iterable[str],
    allow_stacked: Optional[bool] = None,
) -> Dict[int, str]:
    """Block index -> node for one stripe, rotated by ``stripe_id``.

    Block ``i`` lands on ``sorted(nodes)[(stripe_id + i) % len(nodes)]``:
    consecutive blocks still spread over distinct nodes, but the node
    carrying block 0 advances with the stripe id, so no helper is the hot
    head of every stripe.

    Raises
    ------
    ValueError
        When ``n`` exceeds the node count and stacking was not allowed
        (``allow_stacked`` argument, or ``REPRO_ALLOW_STACKED_PLACEMENT``).
    """
    ordered = sorted(set(nodes))
    if not ordered:
        raise ValueError("placement needs at least one helper node")
    if n > len(ordered):
        if allow_stacked is None:
            allow_stacked = os.environ.get(ALLOW_STACKED_ENV, "") not in ("", "0")
        if not allow_stacked:
            raise ValueError(
                f"stripe {stripe_id} has {n} blocks but only {len(ordered)} "
                f"helper nodes are registered; placing it would stack blocks "
                f"on one failure domain (set {ALLOW_STACKED_ENV}=1 to allow)"
            )
    offset = int(stripe_id) % len(ordered)
    return {i: ordered[(offset + i) % len(ordered)] for i in range(n)}


__all__ = ["rotated_placement", "ALLOW_STACKED_ENV"]
