"""ECPipe: the repair middleware (section 5).

ECPipe runs alongside an existing distributed storage system and performs
repairs on its behalf.  The architecture has three roles:

* a **coordinator** that maps a failed block to its stripe, selects helpers
  (greedy least-recently-selected scheduling for full-node recovery) and
  decides the repair path;
* one **helper** daemon co-located with every storage node, which reads the
  locally stored blocks directly from the native file system, computes
  partial slices and forwards them to the next helper through an in-memory
  key-value slice store (the paper uses Redis; here it is an in-process
  store with the same get/put interface);
* a **requestor** instance created by the storage system, which receives the
  repaired slices and assembles the reconstructed block.

This package is the *data plane* of the reproduction: unlike the planners in
:mod:`repro.core`, which only model time, the ECPipe classes move real bytes,
so the test suite can prove that every repair scheme reconstructs exactly the
lost data.  Timing experiments combine both: the data plane validates
correctness, the planners produce the repair times.

The chain *protocol* itself -- hop order, per-hop coefficients, slice layout,
reassembly -- lives in :mod:`repro.ecpipe.pipeline` as transport-agnostic
state machines, shared verbatim between the in-process data plane here and
the live socket service plane in :mod:`repro.service`.
"""

from repro.ecpipe.coordinator import Coordinator
from repro.ecpipe.helper import Helper
from repro.ecpipe.middleware import ECPipe
from repro.ecpipe.pipeline import (
    BlockAssembler,
    ChainHop,
    SliceChainPlan,
    combine_partials,
    split_packed,
)
from repro.ecpipe.requestor import Requestor
from repro.ecpipe.slicestore import SliceStore

__all__ = [
    "ECPipe",
    "Coordinator",
    "Helper",
    "Requestor",
    "SliceStore",
    "SliceChainPlan",
    "ChainHop",
    "BlockAssembler",
    "combine_partials",
    "split_packed",
]
