"""The background repair scanner: the self-healing half of the control plane.

The detector (:mod:`repro.service.detector`) says *which helpers* are gone;
the scanner turns that into *which blocks* are at risk and drives them back
to full redundancy with no client involvement -- the detect -> schedule ->
repair loop the paper leaves to the host storage system.

Each scan tick diffs the coordinator's placement against two loss signals:

* **dead helpers** -- every block placed on a detector-``dead`` node is
  lost right now (the detector's phi timeout *is* the detection delay);
* **inventory gaps** -- a live helper's heartbeat carries its stored-block
  inventory; a placed block missing from it (an erased replica, a helper
  that restarted empty) is lost too, but only after the gap persists for a
  grace window, so an in-flight client repair is not raced.

Lost blocks enqueue into the same risk-first
:class:`~repro.runtime.queue.RepairQueue` the simulated runtime uses -- a
stripe that lost two blocks repairs before a stripe that lost one, FIFO
within a risk level -- and a bounded pool of workers drives each job through
the gateway's ``REPAIR`` endpoint (reconstruction, writeback, and RELOCATE
when the block moves).  Target selection prefers the block's own node when
it is alive; when the node is dead and a *spare* live helper (one holding no
block of the stripe) exists, the block relocates to the spare; otherwise the
job waits for the node to come back, which keeps the paper's placement
assumptions (one failure domain per block) intact.  Failed attempts retry
with exponential backoff plus jitter inside the job, and unfinished jobs are
simply re-discovered by the next scan, so the loop is self-stabilising.

Every decision is journaled through the
:class:`~repro.service.store.MetadataStore`, so ``status --detector`` and
post-mortems can replay what the loop saw and did.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.bench.harness import env_float, env_int
from repro.ecpipe.coordinator import block_key
from repro.obs.metrics import MetricsRegistry
from repro.runtime.queue import RepairJob, RepairQueue
from repro.service.detector import ALIVE, DEAD, PhiFailureDetector
from repro.service.protocol import Op, request
from repro.service.store import MetadataStore

#: Seconds between scan ticks (``REPRO_SCAN_INTERVAL``).
DEFAULT_SCAN_INTERVAL = 0.25

#: Seconds an inventory gap must persist before it is treated as loss
#: (``REPRO_SCANNER_GRACE``); dead-helper losses skip the grace, the
#: detector's own timeout already played that role.
DEFAULT_GRACE = 0.75

#: Concurrent repair jobs in flight (``REPRO_SCANNER_CONCURRENCY``).
DEFAULT_CONCURRENCY = 2

#: Attempts per job before it is returned to the scan loop
#: (``REPRO_SCANNER_ATTEMPTS``).
DEFAULT_ATTEMPTS = 4

#: Base of the exponential retry backoff, seconds
#: (``REPRO_SCANNER_BACKOFF``); attempt ``i`` waits ``base * 2**i`` plus
#: up to 50% jitter.
DEFAULT_BACKOFF = 0.05


class RepairScanner:
    """Self-healing repair loop of one coordinator.

    The scanner reads the coordinator's live state through narrow callables
    rather than a server reference, so tests can drive it against plain
    dictionaries.

    Parameters
    ----------
    detector:
        The heartbeat failure detector.
    store:
        Metadata store (journal target; may be in-memory).
    placement:
        Callable returning ``{(stripe_id, block_index): node}`` for every
        registered block.
    inventory:
        Callable returning ``{node: set(keys)}`` -- the latest heartbeat
        inventory per helper (nodes that never beat are absent).
    gateway:
        Callable returning the registered gateway ``(host, port)`` or
        ``None`` while no gateway is known (the scanner idles).
    scheme:
        Repair scheme driven through the gateway.
    """

    def __init__(
        self,
        detector: PhiFailureDetector,
        store: MetadataStore,
        placement,
        inventory,
        gateway,
        scheme: str = "rp",
        scan_interval: Optional[float] = None,
        grace: Optional[float] = None,
        concurrency: Optional[int] = None,
        attempts: Optional[int] = None,
        backoff: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.detector = detector
        self.store = store
        self._placement = placement
        self._inventory = inventory
        self._gateway = gateway
        self.scheme = scheme
        self.scan_interval = (
            scan_interval
            if scan_interval is not None
            else env_float("REPRO_SCAN_INTERVAL", DEFAULT_SCAN_INTERVAL, minimum=0.01)
        )
        self.grace = (
            grace
            if grace is not None
            else env_float("REPRO_SCANNER_GRACE", DEFAULT_GRACE, minimum=0.0)
        )
        self.concurrency = (
            concurrency
            if concurrency is not None
            else env_int("REPRO_SCANNER_CONCURRENCY", DEFAULT_CONCURRENCY, minimum=1)
        )
        self.attempts = (
            attempts
            if attempts is not None
            else env_int("REPRO_SCANNER_ATTEMPTS", DEFAULT_ATTEMPTS, minimum=1)
        )
        self.backoff = (
            backoff
            if backoff is not None
            else env_float("REPRO_SCANNER_BACKOFF", DEFAULT_BACKOFF, minimum=0.0)
        )
        self.queue = RepairQueue()
        #: Blocks currently being repaired by a worker task.
        self._in_flight: Set[Tuple[int, int]] = set()
        #: First time an inventory gap was seen, per block (grace tracking).
        self._gap_seen: Dict[Tuple[int, int], float] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._rng = random.Random()
        self._loop_task: Optional[asyncio.Task] = None
        # Diagnostics, registry-backed so the DETECTOR op and the metrics
        # exposition read the same counters (one source of truth).  A
        # standalone scanner (unit tests) gets a private registry.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._scans_total = self.registry.counter(
            "scanner_scans_total", "Detect/schedule scan ticks executed."
        )
        self._enqueued_total = self.registry.counter(
            "scanner_repairs_enqueued_total",
            "Lost blocks enqueued into the repair queue.",
        )
        self._repairs_completed_total = self.registry.counter(
            "scanner_repairs_completed_total",
            "Repair jobs driven to completion through the gateway.",
        )
        self._repair_failures_total = self.registry.counter(
            "scanner_repair_failures_total",
            "Failed repair attempts (each is retried with backoff).",
        )
        self._queue_depth_gauge = self.registry.gauge(
            "scanner_queue_depth", "Repair jobs currently queued."
        )
        self._in_flight_gauge = self.registry.gauge(
            "scanner_in_flight", "Repair jobs currently running."
        )
        self._last_lost_gauge = self.registry.gauge(
            "scanner_last_lost", "Blocks considered lost by the latest scan."
        )
        self._journal_gauge = self.registry.gauge(
            "scanner_journal_entries", "Rows in the repair journal."
        )

    # Back-compat integer views of the registry counters: scan_once and the
    # DETECTOR op's stats() predate the registry, and their consumers (tests,
    # status --detector) keep reading plain ints.
    @property
    def scans(self) -> int:
        return int(self._scans_total.value())

    @property
    def repairs_completed(self) -> int:
        return int(self._repairs_completed_total.value())

    @property
    def repair_failures(self) -> int:
        return int(self._repair_failures_total.value())

    @property
    def last_lost(self) -> int:
        return int(self._last_lost_gauge.value())

    def refresh_gauges(self) -> None:
        """Re-derive the live gauges (called before a metrics scrape)."""
        self._queue_depth_gauge.set(self.queue.depth())
        self._in_flight_gauge.set(len(self._in_flight))
        try:
            self._journal_gauge.set(self.store.journal_length())
        except Exception:  # pragma: no cover - a closed store must not fail a scrape
            pass

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the periodic scan loop on the running event loop."""
        if self._loop_task is None:
            self._loop_task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the scan loop and every in-flight repair worker."""
        tasks = [t for t in ([self._loop_task] if self._loop_task else []) + list(self._tasks)]
        self._loop_task = None
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()
        self._in_flight.clear()

    async def _run(self) -> None:
        while True:
            try:
                self.scan_once()
            except Exception:  # pragma: no cover - scan must never kill the loop
                pass
            await asyncio.sleep(self.scan_interval)

    # ------------------------------------------------------------------ scan
    def scan_once(self, now: Optional[float] = None) -> List[Tuple[int, int]]:
        """One detect/schedule tick; returns the blocks considered lost."""
        self._scans_total.inc()
        at = time.monotonic() if now is None else now
        placement = self._placement()
        inventory = self._inventory()
        lost: List[Tuple[int, int]] = []
        per_stripe: Dict[int, int] = {}
        for (stripe_id, index), node in placement.items():
            if math.isinf(self.detector.phi(node, at)):
                # Never beaten: a store-recovered coordinator has not heard
                # from this helper *yet*.  Treating silence-since-boot as
                # death would relocate the whole cluster on every restart.
                continue
            state = self.detector.state(node, at)
            if state == DEAD:
                self._gap_seen.pop((stripe_id, index), None)
                lost.append((stripe_id, index))
            elif state == ALIVE and node in inventory:
                if block_key(stripe_id, index) not in inventory[node]:
                    first = self._gap_seen.setdefault((stripe_id, index), at)
                    if at - first >= self.grace:
                        lost.append((stripe_id, index))
                else:
                    self._gap_seen.pop((stripe_id, index), None)
            # Suspect nodes and nodes that never beat are left alone: they
            # may come back with their data, and relocating too eagerly is
            # how real systems melt down during partitions.
        for stripe_id, _ in lost:
            per_stripe[stripe_id] = per_stripe.get(stripe_id, 0) + 1
        self._last_lost_gauge.set(len(lost))
        for stripe_id, index in lost:
            key = (stripe_id, index)
            risk = per_stripe[stripe_id]
            if key in self._in_flight:
                continue
            if key in self.queue:
                self.queue.reprioritise(stripe_id, risk)
                continue
            self.queue.push(RepairJob(stripe_id, index, at, at, risk=risk))
            self._enqueued_total.inc()
            self.store.journal_append(
                "enqueue", stripe_id, index, detail=f"risk={risk}"
            )
        self._dispatch()
        return lost

    def _dispatch(self) -> None:
        """Hand queued jobs to worker tasks up to the concurrency bound."""
        if self._gateway() is None:
            return
        while len(self._tasks) < self.concurrency:
            job = self.queue.pop()
            if job is None:
                return
            key = (job.stripe_id, job.block_index)
            self._in_flight.add(key)
            task = asyncio.get_running_loop().create_task(self._repair_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            task.add_done_callback(lambda _t, k=key: self._in_flight.discard(k))

    # ----------------------------------------------------------------- repair
    def _select_target(
        self, stripe_id: int, index: int, placement: Dict[Tuple[int, int], str]
    ) -> Optional[str]:
        """Where to write the reconstructed block.

        The block's own node when it is alive (writeback in place); else a
        live *spare* helper holding no block of the stripe (relocation);
        else ``None`` -- wait for the node to return rather than stack two
        blocks of one stripe on a single failure domain.
        """
        node = placement[(stripe_id, index)]
        if self.detector.state(node) == ALIVE:
            return node
        stripe_nodes = {
            n for (s, _i), n in placement.items() if s == stripe_id
        }
        spares = [
            n
            for n in self.detector.nodes()
            if self.detector.state(n) == ALIVE and n not in stripe_nodes
        ]
        if not spares:
            return None
        load: Dict[str, int] = {}
        for (_s, _i), n in placement.items():
            load[n] = load.get(n, 0) + 1
        return min(spares, key=lambda n: (load.get(n, 0), n))

    async def _repair_job(self, job: RepairJob) -> None:
        """Drive one job through the gateway, with bounded backoff retries."""
        stripe_id, index = job.stripe_id, job.block_index
        for attempt in range(self.attempts):
            gateway = self._gateway()
            placement = self._placement()
            if gateway is None or (stripe_id, index) not in placement:
                return
            target = self._select_target(stripe_id, index, placement)
            if target is None:
                self.store.journal_append(
                    "no-target", stripe_id, index,
                    detail="node dead, no spare; waiting",
                )
                return  # the next scan re-discovers the block
            exclude = self.detector.unusable()
            header: Dict[str, object] = {
                "stripe_id": stripe_id,
                "blocks": [index],
                "scheme": self.scheme,
                "exclude_nodes": exclude,
            }
            if target != placement[(stripe_id, index)]:
                header["to"] = target
            try:
                reply = await request(gateway[0], gateway[1], Op.REPAIR, header)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._repair_failures_total.inc()
                self.store.journal_append(
                    "repair-attempt", stripe_id, index,
                    detail=f"attempt={attempt} error={type(exc).__name__}: {exc}",
                )
                delay = self.backoff * (2 ** attempt)
                await asyncio.sleep(delay * (1.0 + 0.5 * self._rng.random()))
                continue
            self._repairs_completed_total.inc()
            self._gap_seen.pop((stripe_id, index), None)
            digest = reply.header.get("sha256", {}).get(str(index), "")
            self.store.journal_append(
                "repaired", stripe_id, index,
                detail=f"target={target} sha256={digest[:16]}",
            )
            return

    # ------------------------------------------------------------ diagnostics
    def stats(self) -> Dict[str, object]:
        """Scanner counters for the DETECTOR op / ``status --detector``."""
        return {
            "scans": self.scans,
            "queue_depth": self.queue.depth(),
            "in_flight": len(self._in_flight),
            "repairs_completed": self.repairs_completed,
            "repair_failures": self.repair_failures,
            "last_lost": self.last_lost,
            "scan_interval": self.scan_interval,
            "grace": self.grace,
            "concurrency": self.concurrency,
        }


__all__ = ["RepairScanner", "DEFAULT_SCAN_INTERVAL", "DEFAULT_GRACE"]
