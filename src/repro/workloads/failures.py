"""Failure injection.

Field studies cited by the paper (section 2.3) report that over 90% of
failure events are transient -- the block is temporarily unavailable and is
served through a degraded read -- while the remainder are permanent node
failures that trigger full-node recovery.  :class:`FailureGenerator` draws a
failure trace with that mix so that end-to-end examples and tests can
exercise both repair paths in realistic proportions.

The generator is deterministic given a seed, and accepts an explicit
``random.Random`` instance so a driver (e.g. the continuous cluster runtime
of :mod:`repro.runtime`) can derive every stochastic component -- failures,
foreground traffic, replacement placement -- from one master seed and replay
a whole multi-day trace bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.request import StripeInfo


@dataclass(frozen=True)
class FailureEvent:
    """One failure event of a trace.

    Attributes
    ----------
    time:
        Event time in seconds since the start of the trace.
    kind:
        ``"transient"`` (degraded read of one block) or ``"node"`` (permanent
        node failure requiring full-node recovery).
    node:
        The affected node.
    stripe_id, block_index:
        The affected block for transient failures; ``None`` for node
        failures (every block of the node is affected).
    duration:
        For transient failures generated with a ``transient_duration_mean``,
        the seconds until the block becomes readable again; ``None``
        otherwise (and always ``None`` for permanent node failures, whose
        data never comes back).
    """

    time: float
    kind: str
    node: str
    stripe_id: Optional[int] = None
    block_index: Optional[int] = None
    duration: Optional[float] = None


class FailureGenerator:
    """Generates randomised failure traces over a set of stripes.

    Parameters
    ----------
    stripes:
        The stripes failures are drawn from.
    transient_fraction:
        Fraction of events that are transient block failures (0.9 by
        default, following the field data cited in section 2.3).
    mean_interarrival:
        Mean seconds between failure events (exponentially distributed).
    seed:
        Seed for reproducibility; ignored when ``rng`` is given.
    rng:
        An explicit ``random.Random`` to draw from.  Passing a shared
        generator lets a driver derive its whole stochastic world from one
        master seed.
    transient_duration_mean:
        When set, every transient event carries an exponentially distributed
        ``duration`` (mean seconds of unavailability); when ``None`` (the
        default) durations are not sampled and ``FailureEvent.duration``
        stays ``None``, preserving the single-shot experiments' behaviour.
    """

    def __init__(
        self,
        stripes: Sequence[StripeInfo],
        transient_fraction: float = 0.9,
        mean_interarrival: float = 60.0,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        transient_duration_mean: Optional[float] = None,
    ) -> None:
        if not stripes:
            raise ValueError("at least one stripe is required")
        if not 0.0 <= transient_fraction <= 1.0:
            raise ValueError("transient_fraction must be within [0, 1]")
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if transient_duration_mean is not None and transient_duration_mean <= 0:
            raise ValueError("transient_duration_mean must be positive when set")
        self._stripes = list(stripes)
        self._transient_fraction = transient_fraction
        self._mean_interarrival = mean_interarrival
        self._transient_duration_mean = transient_duration_mean
        self._rng = rng if rng is not None else random.Random(seed)

    def _nodes(self) -> List[str]:
        nodes = set()
        for stripe in self._stripes:
            nodes.update(stripe.block_locations.values())
        return sorted(nodes)

    def _next_event(self, clock: float, nodes: Sequence[str]) -> FailureEvent:
        if self._rng.random() < self._transient_fraction:
            stripe = self._rng.choice(self._stripes)
            block_index = self._rng.randrange(stripe.code.n)
            duration = None
            if self._transient_duration_mean is not None:
                duration = self._rng.expovariate(1.0 / self._transient_duration_mean)
            return FailureEvent(
                time=clock,
                kind="transient",
                node=stripe.location(block_index),
                stripe_id=stripe.stripe_id,
                block_index=block_index,
                duration=duration,
            )
        return FailureEvent(time=clock, kind="node", node=self._rng.choice(nodes))

    def generate(self, num_events: int) -> List[FailureEvent]:
        """Generate a trace of ``num_events`` failure events."""
        if num_events <= 0:
            raise ValueError("num_events must be positive")
        nodes = self._nodes()
        events: List[FailureEvent] = []
        clock = 0.0
        for _ in range(num_events):
            clock += self._rng.expovariate(1.0 / self._mean_interarrival)
            events.append(self._next_event(clock, nodes))
        return events

    def generate_until(self, horizon_seconds: float) -> List[FailureEvent]:
        """Generate every failure event arriving before ``horizon_seconds``.

        This is the entry point of the continuous runtime, which needs a
        trace spanning a fixed window of simulated wall-clock time (days to
        months) rather than a fixed event count.
        """
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        nodes = self._nodes()
        events: List[FailureEvent] = []
        clock = self._rng.expovariate(1.0 / self._mean_interarrival)
        while clock < horizon_seconds:
            events.append(self._next_event(clock, nodes))
            clock += self._rng.expovariate(1.0 / self._mean_interarrival)
        return events
