"""Metadata service (the NameNode / RaidNode role).

The metadata service tracks which stripes make up each file, which node
stores each block, and which blocks are currently failed.  It is the part of
the storage system the ECPipe coordinator queries for block locations and
stripe membership (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codes.base import ErasureCode
from repro.core.request import StripeInfo


@dataclass
class FileEntry:
    """Metadata of one stored file."""

    name: str
    size: int
    stripe_ids: List[int] = field(default_factory=list)


class MetadataService:
    """File, stripe and block-location metadata.

    Parameters
    ----------
    code:
        The erasure code applied to every stripe of every file.
    """

    def __init__(self, code: ErasureCode) -> None:
        self.code = code
        self._files: Dict[str, FileEntry] = {}
        self._stripes: Dict[int, StripeInfo] = {}
        self._failed_blocks: Set[Tuple[int, int]] = set()
        self._next_stripe_id = 0

    # ----------------------------------------------------------------- files
    def create_file(self, name: str, size: int) -> FileEntry:
        """Register a new (initially stripe-less) file."""
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        entry = FileEntry(name=name, size=size)
        self._files[name] = entry
        return entry

    def file(self, name: str) -> FileEntry:
        """Look up a file."""
        try:
            return self._files[name]
        except KeyError:
            raise KeyError(f"unknown file {name!r}") from None

    def files(self) -> List[FileEntry]:
        """All files."""
        return list(self._files.values())

    # --------------------------------------------------------------- stripes
    def add_stripe(self, file_name: str, block_locations: Dict[int, str]) -> StripeInfo:
        """Register a new stripe of a file and return its metadata."""
        entry = self.file(file_name)
        stripe = StripeInfo(self.code, dict(block_locations), stripe_id=self._next_stripe_id)
        self._stripes[stripe.stripe_id] = stripe
        entry.stripe_ids.append(stripe.stripe_id)
        self._next_stripe_id += 1
        return stripe

    def stripe(self, stripe_id: int) -> StripeInfo:
        """Look up a stripe."""
        try:
            return self._stripes[stripe_id]
        except KeyError:
            raise KeyError(f"unknown stripe {stripe_id}") from None

    def stripes(self, file_name: Optional[str] = None) -> List[StripeInfo]:
        """All stripes, optionally restricted to one file."""
        if file_name is None:
            return list(self._stripes.values())
        return [self._stripes[sid] for sid in self.file(file_name).stripe_ids]

    def blocks_on_node(self, node: str) -> List[Tuple[int, int]]:
        """``(stripe_id, block_index)`` pairs stored on a node."""
        found = []
        for stripe in self._stripes.values():
            for block_index in stripe.blocks_on_node(node):
                found.append((stripe.stripe_id, block_index))
        return found

    # -------------------------------------------------------------- failures
    def mark_failed(self, stripe_id: int, block_index: int) -> None:
        """Record a failed block (from block reports / checksum scans)."""
        self.stripe(stripe_id)  # validate
        self._failed_blocks.add((stripe_id, block_index))

    def mark_repaired(self, stripe_id: int, block_index: int) -> None:
        """Clear a block's failed state after it has been reconstructed."""
        self._failed_blocks.discard((stripe_id, block_index))

    def failed_blocks(self) -> List[Tuple[int, int]]:
        """All currently failed blocks."""
        return sorted(self._failed_blocks)

    def failed_blocks_of_stripe(self, stripe_id: int) -> List[int]:
        """Failed block indices of one stripe."""
        return sorted(b for (s, b) in self._failed_blocks if s == stripe_id)

    def mark_node_failed(self, node: str) -> List[Tuple[int, int]]:
        """Mark every block of a node as failed; returns the affected blocks."""
        lost = self.blocks_on_node(node)
        for stripe_id, block_index in lost:
            self._failed_blocks.add((stripe_id, block_index))
        return lost
