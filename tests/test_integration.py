"""End-to-end integration tests across the whole stack.

These tests exercise the same flows as the examples: write files through a
storage-system facade, inject failures, repair through ECPipe, and check both
the recovered bytes and the simulated timing relationships.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.analysis import mttdl_years
from repro.cluster import KiB, MiB, build_rack_cluster, mbps
from repro.codes import RSCode
from repro.core import (
    ConventionalRepair,
    FullNodeRecovery,
    RepairPipelining,
    RepairRequest,
    StripeInfo,
)
from repro.core.paths import RackAwarePathSelector
from repro.sim import Simulator
from repro.storage import HDFS3, QFS, HDFSRaid, RackAwarePlacement
from repro.workloads import FailureGenerator, random_stripes
from conftest import random_payload

NODES = [f"node{i}" for i in range(16)]


class TestStorageEndToEnd:
    @pytest.mark.parametrize("system_class", [HDFSRaid, HDFS3, QFS])
    def test_write_fail_repair_cycle(self, rng, system_class):
        system = system_class(NODES, block_size=2048)
        payload = random_payload(rng, 2048 * system.code.k)
        system.write_file("data", payload)

        # degraded read of a failed block returns the original bytes
        system.fail_block(0, 1)
        block = system.degraded_read(0, 1, "node15", slice_size=256)
        assert block == payload[2048:4096]

        # repairing writes the block back and clears the failure
        system.repair_block(0, 1, "node15", slice_size=256)
        assert system.metadata.failed_blocks() == []
        assert system.read_block(0, 1) == payload[2048:4096]

    def test_node_failure_then_full_recovery(self, rng):
        system = QFS(NODES, block_size=1024)
        payloads = {}
        for index in range(3):
            payload = random_payload(rng, 1024 * 6)
            system.write_file(f"f{index}", payload)
            payloads[index] = payload
        victim = system.metadata.stripe(0).location(2)
        lost = system.fail_node(victim)
        assert lost

        recovered = system.ecpipe.recover_node(victim, ["node14", "node15"], 256)
        for (stripe_id, block_index), data in recovered.items():
            expected = system.code.encode(
                [payloads[stripe_id][i * 1024:(i + 1) * 1024] for i in range(6)]
            )[block_index].tobytes()
            assert data == expected

    def test_failure_trace_driven_degraded_reads(self, rng):
        system = HDFSRaid(NODES, code=RSCode(9, 6), block_size=1024)
        payload = random_payload(rng, 1024 * 6)
        system.write_file("hot-object", payload)
        stripes = system.metadata.stripes()
        generator = FailureGenerator(stripes, transient_fraction=1.0, seed=13)
        for event in generator.generate(10):
            block = system.degraded_read(
                event.stripe_id, event.block_index, "node15", slice_size=128
            )
            expected = system.code.encode(
                [payload[i * 1024:(i + 1) * 1024] for i in range(6)]
            )[event.block_index].tobytes()
            assert block == expected


class TestRackAwareEndToEnd:
    def test_rack_placement_plus_rack_aware_repair(self):
        cluster = build_rack_cluster(3, 6, mbps(800))
        code = RSCode(9, 6)
        placement = RackAwarePlacement(cluster, blocks_per_rack=3)
        stripe = StripeInfo(code, placement.place(0, code.n))
        requestor = next(
            node.name for node in cluster.nodes()
            if node.name not in stripe.block_locations.values()
        )
        request = RepairRequest(stripe, [0], requestor, 4 * MiB, 64 * KiB)

        conventional = ConventionalRepair().repair_time(request, cluster).makespan
        rack_aware = RepairPipelining(
            "rp", path_selector=RackAwarePathSelector()
        ).repair_time(request, cluster).makespan
        assert rack_aware < conventional * 0.5

    def test_rack_aware_path_minimises_core_traffic(self):
        cluster = build_rack_cluster(3, 6, mbps(400))
        code = RSCode(9, 6)
        placement = RackAwarePlacement(cluster, blocks_per_rack=3)
        stripe = StripeInfo(code, placement.place(0, code.n))
        requestor = next(
            node.name for node in cluster.nodes()
            if node.name not in stripe.block_locations.values()
            and node.rack == cluster.node(stripe.location(0)).rack
        )
        request = RepairRequest(stripe, [0], requestor, 4 * MiB, 64 * KiB)
        rack_ports = {
            port.name for pair in cluster.rack_core_ports().values() for port in pair
        }

        def core_bytes(scheme):
            graph = scheme.build_graph(request, cluster)
            return sum(
                task.size_bytes
                for task in graph.tasks
                if task.kind == "transfer"
                and any(p.name in rack_ports for p in task.ports)
            )

        aware = core_bytes(RepairPipelining("rp", path_selector=RackAwarePathSelector()))
        naive = core_bytes(ConventionalRepair())
        assert aware < naive

    def test_faster_repair_improves_durability(self, flat_cluster, single_repair):
        conventional = ConventionalRepair().repair_time(single_repair, flat_cluster).makespan
        rp = RepairPipelining("rp").repair_time(single_repair, flat_cluster).makespan
        assert mttdl_years(14, 10, 0.25, rp) > mttdl_years(14, 10, 0.25, conventional)


class TestRecoveryConsistency:
    def test_timing_and_data_plane_agree_on_helper_counts(self, flat_cluster, rng):
        """The planner's traffic matches what the data plane actually reads."""
        code = RSCode(9, 6)
        stripe = StripeInfo(code, {i: f"node{i}" for i in range(9)})
        request = RepairRequest(stripe, [4], "node16", 4096, 512)
        graph = RepairPipelining("rp").build_graph(request, flat_cluster)
        planned_reads = graph.total_bytes("disk")

        from repro.ecpipe import ECPipe

        ecpipe = ECPipe([f"node{i}" for i in range(17)])
        data = [random_payload(rng, 4096) for _ in range(6)]
        coded = [b.tobytes() for b in code.encode(data)]
        ecpipe.add_stripe(stripe, dict(enumerate(coded)))
        ecpipe.erase_block(0, 4)
        ecpipe.repair_pipelined(0, [4], "node16", 512)
        actual_reads = sum(
            ecpipe.helper(f"node{i}").bytes_read for i in range(9) if i != 4
        )
        # the data plane additionally probes one block to learn the block size
        assert actual_reads - 4096 <= planned_reads <= actual_reads

    def test_full_node_recovery_simulation_runs_for_every_scheme(self, flat_cluster):
        code = RSCode(9, 6)
        stripes = random_stripes(code, NODES, 6, seed=3, pin_node="node1")
        for scheme in (ConventionalRepair(), RepairPipelining("rp")):
            recovery = FullNodeRecovery(scheme)
            result = recovery.run(
                stripes, "node1", ["node14", "node15"], 2 * MiB, 256 * KiB, flat_cluster
            )
            assert result.num_stripes == 6
            assert result.recovery_rate > 0


class TestExamples:
    def test_quickstart_example_runs(self):
        script = pathlib.Path(__file__).resolve().parent.parent / "examples" / "quickstart.py"
        completed = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True, timeout=300
        )
        assert completed.returncode == 0, completed.stderr
        assert "repair pipelining cuts the repair time" in completed.stdout
