"""Unit tests for GF(2^8) scalar and vectorised arithmetic."""

import numpy as np
import pytest

from repro.gf import GF256, gf_add, gf_div, gf_inv, gf_mul, gf_mul_bytes, gf_mulsum_bytes, gf_pow
from repro.gf.gf256 import EXP_TABLE, FIELD_SIZE, GROUP_ORDER, LOG_TABLE, MUL_TABLE, gf_sub


class TestTables:
    def test_exp_table_cycles_through_all_nonzero_elements(self):
        seen = {int(EXP_TABLE[i]) for i in range(GROUP_ORDER)}
        assert seen == set(range(1, FIELD_SIZE))

    def test_log_exp_are_inverse(self):
        for value in range(1, FIELD_SIZE):
            assert int(EXP_TABLE[LOG_TABLE[value]]) == value

    def test_mul_table_matches_scalar_mul(self):
        for a in (0, 1, 2, 37, 255):
            for b in (0, 1, 5, 129, 254):
                assert int(MUL_TABLE[a, b]) == gf_mul(a, b)


class TestScalarOps:
    def test_addition_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_subtraction_equals_addition(self):
        assert gf_sub(200, 77) == gf_add(200, 77)

    def test_zero_is_additive_identity(self):
        for a in range(0, 256, 17):
            assert gf_add(a, 0) == a

    def test_one_is_multiplicative_identity(self):
        for a in range(0, 256, 13):
            assert gf_mul(a, 1) == a

    def test_mul_by_zero_is_zero(self):
        for a in range(0, 256, 29):
            assert gf_mul(a, 0) == 0

    def test_known_product(self):
        # 2 * 128 = 0x100 mod 0x11d = 0x1d
        assert gf_mul(2, 128) == 0x1D

    def test_division_inverts_multiplication(self):
        for a in range(1, 256, 7):
            for b in range(1, 256, 11):
                assert gf_div(gf_mul(a, b), b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_inverse(self):
        for a in range(1, 256, 5):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_pow_matches_repeated_multiplication(self):
        for a in (1, 2, 3, 87, 255):
            acc = 1
            for exponent in range(6):
                assert gf_pow(a, exponent) == acc
                acc = gf_mul(acc, a)

    def test_pow_zero_exponent(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(123, 0) == 1

    def test_pow_negative_exponent(self):
        assert gf_mul(gf_pow(7, -1), 7) == 1

    def test_pow_zero_base_negative_exponent_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -2)


class TestBufferKernels:
    def test_mul_bytes_zero_coefficient(self):
        out = gf_mul_bytes(0, b"\x01\x02\x03")
        assert out.tolist() == [0, 0, 0]

    def test_mul_bytes_identity_coefficient(self):
        out = gf_mul_bytes(1, b"\x01\x02\x03")
        assert out.tolist() == [1, 2, 3]

    def test_mul_bytes_matches_scalar(self):
        data = bytes(range(256))
        out = gf_mul_bytes(29, data)
        assert out.tolist() == [gf_mul(29, b) for b in data]

    def test_mulsum_is_linear_combination(self):
        a = bytes([1, 2, 3, 4])
        b = bytes([5, 6, 7, 8])
        out = gf_mulsum_bytes([3, 7], [a, b])
        expected = [gf_add(gf_mul(3, x), gf_mul(7, y)) for x, y in zip(a, b)]
        assert out.tolist() == expected

    def test_mulsum_accepts_numpy_buffers(self):
        a = np.frombuffer(bytes([9, 9]), dtype=np.uint8)
        out = gf_mulsum_bytes([1], [a])
        assert out.tolist() == [9, 9]

    def test_mulsum_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            gf_mulsum_bytes([1, 1], [b"\x00", b"\x00\x01"])

    def test_mulsum_rejects_coeff_buffer_mismatch(self):
        with pytest.raises(ValueError):
            gf_mulsum_bytes([1], [b"\x00", b"\x01"])

    def test_mulsum_requires_buffers(self):
        with pytest.raises(ValueError):
            gf_mulsum_bytes([], [])


class TestGF256Facade:
    def test_facade_delegates(self):
        field = GF256()
        assert field.add(3, 5) == gf_add(3, 5)
        assert field.mul(3, 5) == gf_mul(3, 5)
        assert field.div(10, 5) == gf_div(10, 5)
        assert field.inv(9) == gf_inv(9)
        assert field.pow(3, 4) == gf_pow(3, 4)
        assert field.sub(3, 5) == gf_add(3, 5)

    def test_facade_buffer_ops(self):
        field = GF256()
        assert field.mul_bytes(2, b"\x01").tolist() == [2]
        assert field.mulsum_bytes([1, 1], [b"\x01", b"\x02"]).tolist() == [3]

    def test_order(self):
        assert GF256.order == 256
