"""Mean time to data loss (MTTDL) via Markov analysis.

Section 4.2 of the paper argues that faster repairs improve durability by
shrinking the window of vulnerability, citing the standard Markov MTTDL
methodology.  This module implements that methodology for an ``(n, k)``
erasure-coded stripe:

* state ``i`` means ``i`` blocks of the stripe are currently failed;
* failures arrive at rate ``(n - i) * lambda`` (independent node failures);
* repairs complete at rate ``mu`` (one block repaired at a time; ``mu`` is
  the inverse of the repair time, which is exactly what repair pipelining
  reduces);
* state ``n - k + 1`` is absorbing (data loss).

The MTTDL is the expected time to absorption starting from the all-healthy
state, obtained by solving the linear system of expected absorption times.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Seconds per year, used for the conventional "MTTDL in years" unit.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def repair_rate_from_repair_time(repair_time_seconds: float) -> float:
    """Convert a per-block repair time into a repair rate (repairs/second)."""
    if repair_time_seconds <= 0:
        raise ValueError("repair_time_seconds must be positive")
    return 1.0 / repair_time_seconds


def mttdl_seconds(
    n: int,
    k: int,
    failure_rate: float,
    repair_rate: float,
) -> float:
    """MTTDL of an ``(n, k)`` stripe in seconds.

    Parameters
    ----------
    n, k:
        Erasure-code parameters; the stripe tolerates ``n - k`` concurrent
        failures.
    failure_rate:
        Per-node failure rate ``lambda`` in failures/second.
    repair_rate:
        Repair rate ``mu`` in repairs/second (inverse of the single-block
        repair time).
    """
    if k <= 0 or n <= k:
        raise ValueError("require 0 < k < n")
    if failure_rate <= 0 or repair_rate <= 0:
        raise ValueError("rates must be positive")

    # States 0 .. n-k are transient; one more failure absorbs (data loss).
    # Writing d_i = T_i - T_{i+1} turns the absorption-time recurrence into a
    # forward sweep (all terms positive), which stays numerically stable even
    # when repair is many orders of magnitude faster than failure -- the
    # regime every real deployment lives in.
    last_transient = n - k
    differences = []
    previous = 0.0
    for state in range(last_transient + 1):
        fail = (n - state) * failure_rate
        repair = repair_rate if state >= 1 else 0.0
        current = (1.0 + repair * previous) / fail
        differences.append(current)
        previous = current
    return float(np.sum(differences))


def mttdl_years(
    n: int,
    k: int,
    failure_rate_per_year: float,
    repair_time_seconds: float,
) -> float:
    """MTTDL of an ``(n, k)`` stripe in years.

    Parameters
    ----------
    n, k:
        Erasure-code parameters.
    failure_rate_per_year:
        Per-node failure rate in failures/year (e.g. ``0.25`` for a 4-year
        mean time between failures).
    repair_time_seconds:
        Single-block repair time in seconds; this is the knob repair
        pipelining turns.
    """
    failure_rate = failure_rate_per_year / SECONDS_PER_YEAR
    repair_rate = repair_rate_from_repair_time(repair_time_seconds)
    return mttdl_seconds(n, k, failure_rate, repair_rate) / SECONDS_PER_YEAR


def mttdl_improvement(
    n: int,
    k: int,
    failure_rate_per_year: float,
    baseline_repair_seconds: float,
    improved_repair_seconds: float,
) -> float:
    """Ratio of MTTDLs achieved by two repair times (improved / baseline)."""
    baseline = mttdl_years(n, k, failure_rate_per_year, baseline_repair_seconds)
    improved = mttdl_years(n, k, failure_rate_per_year, improved_repair_seconds)
    return improved / baseline


def mttdl_from_trace(
    n: int,
    k: int,
    num_nodes: int,
    node_failures: int,
    horizon_seconds: float,
    mean_repair_seconds: float,
) -> float:
    """MTTDL (years) estimated from an observed failure/repair trace.

    The continuous cluster runtime (:mod:`repro.runtime`) measures a
    per-node failure rate (permanent node failures over the simulated
    horizon) and a mean repair time (MTTR) instead of assuming them; this
    helper plugs those measurements into the Markov model, closing the loop
    between the simulated month of cluster life and the durability analysis
    of section 4.2.

    Returns ``inf`` when the trace contains no permanent failure (the model
    has nothing to extrapolate from).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if node_failures < 0:
        raise ValueError("node_failures must be non-negative")
    if horizon_seconds <= 0:
        raise ValueError("horizon_seconds must be positive")
    if node_failures == 0:
        return float("inf")
    failure_rate = node_failures / (num_nodes * horizon_seconds)
    repair_rate = repair_rate_from_repair_time(mean_repair_seconds)
    return mttdl_seconds(n, k, failure_rate, repair_rate) / SECONDS_PER_YEAR


def compare_repair_schemes(
    n: int,
    k: int,
    failure_rate_per_year: float,
    repair_times: Sequence[float],
) -> list:
    """MTTDL (years) for a list of repair times (one per scheme)."""
    return [
        mttdl_years(n, k, failure_rate_per_year, repair_time)
        for repair_time in repair_times
    ]
