"""Shared benchmark-harness utilities.

The scripts under ``benchmarks/`` regenerate the paper's tables and figures.
They share a small amount of infrastructure -- standard cluster and stripe
construction, result tables, and environment-variable scaling knobs -- which
lives here so each benchmark stays focused on its experiment.
"""

from repro.bench.harness import (
    ExperimentTable,
    env_float,
    env_int,
    env_positive_int,
    reduction_percent,
    single_block_request,
    standard_cluster,
    standard_stripe,
)

__all__ = [
    "ExperimentTable",
    "standard_cluster",
    "standard_stripe",
    "single_block_request",
    "reduction_percent",
    "env_int",
    "env_float",
    "env_positive_int",
]
