"""Figure 11(b): full-node recovery -- PUSH baselines versus repair pipelining.

Compares block-level pipelining in the style of PUSH (Pipe-Rep reconstructs
every block on one node; Pipe-Sur spreads reconstructed blocks over all
nodes) against slice-level repair pipelining with greedy scheduling
(RP-single on one node; RP-all over all nodes) while varying the block size.
Observations to reproduce: for tiny blocks (1 MiB) block-level pipelining is
competitive because there are many blocks to pipeline across, but as the
block size grows its recovery rate collapses while RP's grows (80%/268%
higher than Pipe-Rep/Pipe-Sur at 64 MiB in the paper), and RP-all beats
RP-single by spreading the requestor load.

The paper repairs 4 TiB of data; the default here is scaled down via
``REPRO_STRIPES`` (the recovery *rate* is what matters, not the total
volume).
"""

from repro.bench import ExperimentTable, env_int, standard_cluster
from repro.cluster import KiB, MiB, to_mib_per_sec
from repro.codes import RSCode
from repro.core import FullNodeRecovery, RepairPipelining
from repro.workloads import random_stripes

BLOCK_SIZES_MIB = [1, 4, 16, 64]
HELPERS = [f"node{i}" for i in range(16)]


def run_experiment():
    """Regenerate the Figure 11(b) series; returns the result table."""
    cluster = standard_cluster()
    code = RSCode(14, 10)
    num_stripes = env_int("REPRO_FIG11B_STRIPES", 8)
    max_block = env_int("REPRO_FIG11B_MAX_BLOCK_MIB", 64)
    stripes = random_stripes(code, HELPERS, num_stripes, seed=64, pin_node="node0")
    all_nodes = [f"node{i}" for i in range(1, 16)]

    table = ExperimentTable(
        "Figure 11(b): full-node recovery rate (MiB/s) vs block size",
        ["block_mib", "pipe_rep", "pipe_sur", "rp_single", "rp_all"],
    )
    for block_mib in [b for b in BLOCK_SIZES_MIB if b <= max_block]:
        block_size = block_mib * MiB
        slice_size = min(32 * KiB, block_size)
        configurations = {
            "pipe_rep": (RepairPipelining("pipe_b"), ["node16"]),
            "pipe_sur": (RepairPipelining("pipe_b"), all_nodes),
            "rp_single": (RepairPipelining("rp"), ["node16"]),
            "rp_all": (RepairPipelining("rp"), all_nodes),
        }
        rates = []
        for scheme, requestors in configurations.values():
            recovery = FullNodeRecovery(scheme, greedy_scheduling=True)
            result = recovery.run(
                stripes, "node0", requestors, block_size, slice_size, cluster
            )
            rates.append(to_mib_per_sec(result.recovery_rate))
        table.add_row(block_mib, *rates)
    return table


def test_fig11b_push_comparison(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()
    rows = {int(r["block_mib"]): r for r in table.as_dicts()}
    largest = max(rows)
    big = rows[largest]
    # at large block sizes slice-level pipelining wins clearly
    assert float(big["rp_single"]) > float(big["pipe_rep"])
    assert float(big["rp_all"]) > float(big["pipe_sur"])
    # spreading requestors beats a single reconstruction node
    assert float(big["rp_all"]) > float(big["rp_single"])
    # RP's recovery rate grows (or at least does not collapse) with block size,
    # unlike the block-level PUSH baselines
    smallest = rows[min(rows)]
    assert float(big["rp_all"]) >= float(smallest["rp_all"]) * 0.8


if __name__ == "__main__":
    run_experiment().show()
