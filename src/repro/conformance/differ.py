"""Differential harness: optimized vs reference engine on chaos scenarios.

Every trial is executed twice from the identical derived seed -- once on the
production stack (:class:`~repro.sim.engine.DynamicSimulator` plus plan
memoization and graph templates) and once on the independent naive stack
(:class:`~repro.sim.reference.ReferenceSimulator`, templates off).  The two
:class:`~repro.exp.runner.TrialResult`\\ s are then diffed **field by
field**; any difference is a conformance failure, because the engines
implement one simulation contract and share no scheduling code.

Chaos scenarios
---------------
:func:`chaos_scenarios` draws randomized scenarios that deliberately
compose the runtime's hostile axes -- correlated rack bursts, Zipf hot-spot
read mixes, transient-outage storms, per-node repair throttle caps, all
code families and schemes, and rapid permanent-failure/rejoin cycles (the
runtime's topology churn: nodes die, blocks relocate to random replacements
mid-run, replacements die again).  Each scenario derives from
``derive_seed(root_seed, "chaos", index)``, so the matrix is stable across
machines and CI runs while still covering a broad slice of the input space;
bumping ``root_seed`` sweeps a fresh slice.

Oracle checks (:mod:`repro.conformance.oracles`) ride along: both reports
must also satisfy the contended-run envelopes, so a bug that fooled *both*
engines the same way still has a chance of being caught analytically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.conformance.oracles import OracleViolation, check_report_invariants
from repro.exp.runner import TrialResult, run_trial
from repro.exp.scenario import Scenario
from repro.exp.seeds import derive_seed

#: Default root seed of the chaos matrix (CI pins this).
CHAOS_ROOT_SEED = 20170731

#: Scheme pool for chaos draws: every runtime scheme, with the pipelining
#: family weighted up since it is the paper's subject.
_CHAOS_SCHEMES = ("rp", "rp", "conventional", "ppr", "pipe_s", "pipe_b")


@dataclass(frozen=True)
class FieldMismatch:
    """One report field on which the two engines disagreed."""

    fieldname: str
    optimized: object
    reference: object

    def __str__(self) -> str:
        delta = ""
        if isinstance(self.optimized, float) and isinstance(self.reference, float):
            if not (math.isnan(self.optimized) or math.isnan(self.reference)):
                delta = f"  (delta {self.reference - self.optimized:+.9g})"
        return f"{self.fieldname}: optimized={self.optimized!r} reference={self.reference!r}{delta}"


@dataclass
class TrialDiff:
    """Outcome of one differential trial."""

    scenario: str
    trial: int
    seed: int
    mismatches: List[FieldMismatch] = field(default_factory=list)
    oracle_violations: List[OracleViolation] = field(default_factory=list)
    optimized_wall: float = 0.0
    reference_wall: float = 0.0
    tasks_completed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the engines agreed and every oracle held."""
        return not self.mismatches and not self.oracle_violations

    def render(self) -> str:
        """Readable single-trial report."""
        lines = [
            f"{'OK  ' if self.ok else 'FAIL'} {self.scenario} trial={self.trial} "
            f"seed={self.seed} tasks={self.tasks_completed} "
            f"wall opt={self.optimized_wall:.2f}s ref={self.reference_wall:.2f}s"
        ]
        lines.extend(f"    engines disagree on {m}" for m in self.mismatches)
        lines.extend(f"    oracle violated: {v}" for v in self.oracle_violations)
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """All trial diffs of one differential matrix run."""

    trials: List[TrialDiff]

    @property
    def ok(self) -> bool:
        """Whether every trial conformed."""
        return all(t.ok for t in self.trials)

    @property
    def failures(self) -> List[TrialDiff]:
        """The non-conforming trials."""
        return [t for t in self.trials if not t.ok]

    def render(self, verbose: bool = False) -> str:
        """Readable multi-trial report (failures always shown in full)."""
        lines = []
        for trial in self.trials:
            if verbose or not trial.ok:
                lines.append(trial.render())
        opt = sum(t.optimized_wall for t in self.trials)
        ref = sum(t.reference_wall for t in self.trials)
        speedup = ref / opt if opt > 0 else math.inf
        lines.append(
            f"{len(self.trials)} differential trials, "
            f"{len(self.failures)} failures; wall optimized={opt:.1f}s "
            f"reference={ref:.1f}s (optimized engine {speedup:.1f}x faster)"
        )
        return "\n".join(lines)


def _values_equal(a: object, b: object) -> bool:
    """Field equality with NaN == NaN (an undefined metric matches itself)."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def diff_results(optimized: TrialResult, reference: TrialResult) -> List[FieldMismatch]:
    """Field-by-field diff of two trial results (empty means identical)."""
    mismatches: List[FieldMismatch] = []
    for key in ("scenario", "trial", "seed", "final_time", "tasks_completed"):
        a, b = getattr(optimized, key), getattr(reference, key)
        if not _values_equal(a, b):
            mismatches.append(FieldMismatch(key, a, b))
    keys = list(optimized.summary)
    for key in reference.summary:
        if key not in optimized.summary:
            keys.append(key)
    for key in keys:
        a = optimized.summary.get(key, "<missing>")
        b = reference.summary.get(key, "<missing>")
        if not _values_equal(a, b):
            mismatches.append(FieldMismatch(f"summary.{key}", a, b))
    return mismatches


def diff_trial(
    scenario: Scenario,
    trial: int = 0,
    root_seed: int = CHAOS_ROOT_SEED,
    check_oracles: bool = True,
) -> TrialDiff:
    """Run one scenario trial on both engines and diff the reports."""
    optimized = run_trial(scenario, trial, root_seed, engine="optimized")
    reference = run_trial(scenario, trial, root_seed, engine="reference")
    result = TrialDiff(
        scenario=scenario.name,
        trial=trial,
        seed=optimized.seed,
        mismatches=diff_results(optimized, reference),
        optimized_wall=optimized.wall_seconds,
        reference_wall=reference.wall_seconds,
        tasks_completed=optimized.tasks_completed,
    )
    if check_oracles:
        for engine_name, trial_result in (
            ("optimized", optimized),
            ("reference", reference),
        ):
            oracle = check_report_invariants(trial_result.summary, scenario)
            result.oracle_violations.extend(
                OracleViolation(f"{engine_name}.{v.oracle}", v.detail)
                for v in oracle.violations
            )
    return result


def chaos_scenarios(
    count: int,
    root_seed: int = CHAOS_ROOT_SEED,
    days: Optional[float] = None,
    num_stripes: Optional[int] = None,
) -> List[Scenario]:
    """Draw ``count`` randomized chaos scenarios (deterministic in the seed).

    ``days`` / ``num_stripes`` override the drawn horizon and population
    (CI scales them down).  See the module docstring for what the draws
    compose.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    scenarios: List[Scenario] = []
    for index in range(count):
        rng = random.Random(derive_seed(root_seed, "chaos", index))
        scheme = rng.choice(_CHAOS_SCHEMES)
        code = _draw_code(rng, scheme)
        topology, num_nodes, num_racks, cross = _draw_topology(rng)
        block_size = rng.choice((1 << 20, 1 << 21))
        slice_size = rng.choice((1 << 17, 1 << 18, 1 << 19))
        failure_model = rng.choice(("independent", "independent", "rack_burst"))
        foreground_rate = rng.choice((0.0, 0.005, 0.02, 0.05))
        distribution = rng.choice(("uniform", "zipf"))
        scenarios.append(
            Scenario(
                name=f"chaos-{index:03d}",
                code=code,
                topology=topology,
                num_nodes=num_nodes,
                num_racks=num_racks,
                cross_rack_bandwidth=cross,
                num_stripes=num_stripes if num_stripes is not None else rng.randint(8, 24),
                days=days if days is not None else rng.choice((0.5, 1.0)),
                scheme=scheme,
                block_size=block_size,
                slice_size=slice_size,
                max_concurrent_repairs=rng.randint(2, 8),
                repair_bandwidth_cap=rng.choice((None, 20e6, 40e6, 80e6)),
                detection_delay=rng.choice((30.0, 120.0, 600.0)),
                # Short rejoin + short interarrival = rapid kill/replace
                # churn: blocks relocate to random nodes all run long.
                node_rejoin_seconds=rng.choice((600.0, 1800.0, 3600.0)),
                mean_failure_interarrival=rng.choice((900.0, 1800.0, 3600.0)),
                transient_fraction=rng.choice((0.5, 0.8, 0.95)),
                transient_duration_mean=rng.choice((120.0, 600.0, 1200.0)),
                failure_model=failure_model,
                burst_mean_interarrival=rng.choice((7200.0, 14400.0)),
                burst_size_mean=rng.uniform(1.5, 3.0),
                burst_span_seconds=rng.choice((60.0, 300.0)),
                foreground_rate=foreground_rate,
                read_distribution=distribution,
                zipf_alpha=rng.uniform(0.8, 1.6),
            )
        )
    return scenarios


def live_vocabulary_scenarios(
    days: float = 0.5,
    num_stripes: int = 12,
) -> List[Scenario]:
    """One runtime scenario per *live* chaos-harness scenario.

    The live harness (:mod:`repro.chaos`) and the differential matrix share
    one fault vocabulary: each live scenario declares, via
    ``runtime_axes()``, which hostile axis of the simulated runtime it is
    the physical analogue of (kill/rejoin churn, pure transients, straggler
    caps, ...).  This bridge compiles that declaration into
    :class:`~repro.exp.scenario.Scenario` cells so the same stress the live
    cluster survives is also differ-checked across both engines.
    """
    from repro.chaos.scenarios import SCENARIOS as LIVE_SCENARIOS
    from repro.chaos.scenarios import ChaosConfig

    config = ChaosConfig()
    scenarios: List[Scenario] = []
    for name in sorted(LIVE_SCENARIOS):
        live = LIVE_SCENARIOS[name]
        scenarios.append(
            Scenario(
                name=f"live-{name}",
                code=("rs", config.n, config.k),
                topology="flat",
                num_nodes=max(10, 2 * config.n),
                num_stripes=num_stripes,
                days=days,
                scheme=config.scheme,
                block_size=config.block_size,
                slice_size=config.slice_size,
                **live.runtime_axes(),
            )
        )
    return scenarios


def _draw_code(rng: random.Random, scheme: str) -> Tuple:
    """A small random code spec; PPR only accepts single-failure repairs,
    which every family here satisfies, and LRC exercises the runtime's
    template-bypass path (solver may drop zero-coefficient helpers)."""
    family = rng.choice(("rs", "rs", "rs", "lrc", "rotated"))
    if family == "rs":
        k = rng.randint(3, 6)
        return ("rs", k + rng.randint(2, 3), k)
    if family == "rotated":
        k = rng.randint(3, 5)
        return ("rotated", k + 2, k)
    return ("lrc", rng.choice((4, 6)), 2, 2)


def _draw_topology(rng: random.Random) -> Tuple[str, int, int, Optional[float]]:
    if rng.random() < 0.5:
        return ("flat", rng.randint(10, 16), rng.randint(2, 4), None)
    num_racks = rng.randint(2, 4)
    nodes_per_rack = rng.randint(3, 5)
    return (
        "rack",
        num_racks * nodes_per_rack,
        num_racks,
        rng.choice((200e6, 500e6, 1000e6)),
    )


def run_differential_matrix(
    scenarios: Sequence[Scenario],
    trials: int = 1,
    root_seed: int = CHAOS_ROOT_SEED,
    check_oracles: bool = True,
    progress=None,
) -> DifferentialReport:
    """Diff every ``(scenario, trial)`` cell on both engines.

    ``progress``, if given, is called with each finished :class:`TrialDiff`
    (the CLI uses it to stream results).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    diffs: List[TrialDiff] = []
    for scenario in scenarios:
        for trial in range(trials):
            diff = diff_trial(
                scenario, trial, root_seed, check_oracles=check_oracles
            )
            diffs.append(diff)
            if progress is not None:
                progress(diff)
    return DifferentialReport(diffs)
