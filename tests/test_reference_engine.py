"""The reference engine: API behaviour and exact parity with the optimized one.

The reference engine (``repro.sim.reference``) shares no scheduling code
with ``repro.sim.engine``; these tests pin that the two implementations of
the simulation contract are *observationally identical* -- same makespans,
same per-port accounting, same task start order -- across every scheme
family and topology, including the tie-breaking corner cases (zero-service
tasks, same-instant arrivals, multi-port blocking) that motivated the
engine's virtual-release design.
"""

import math

import pytest

from repro.cluster import KiB, MiB, build_flat_cluster, build_rack_cluster
from repro.codes import LRCCode, RSCode, RotatedRSCode
from repro.core import (
    ConventionalRepair,
    PPRRepair,
    RepairPipelining,
    RepairRequest,
    StripeInfo,
)
from repro.sim import (
    DynamicSimulator,
    Port,
    ReferenceSimulator,
    Simulator,
    Task,
    TaskGraph,
    run_reference,
)

BLOCK = 1 * MiB
SLICE = 64 * KiB


def _flat_request(code, failed, requestors, slice_size=SLICE):
    stripe = StripeInfo(code, {i: f"node{i}" for i in range(code.n)})
    return RepairRequest(stripe, failed, requestors, BLOCK, slice_size)


SCHEMES = {
    "conventional": ConventionalRepair(),
    "ppr": PPRRepair(),
    "rp": RepairPipelining("rp"),
    "pipe_s": RepairPipelining("pipe_s"),
    "pipe_b": RepairPipelining("pipe_b"),
}


class TestClosedGraphParity:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_flat_single_block(self, name):
        cluster = build_flat_cluster(17)
        request = _flat_request(RSCode(14, 10), [0], "node16")
        scheme = SCHEMES[name]
        optimized = Simulator(scheme.build_graph(request, cluster)).run()
        reference = run_reference(scheme.build_graph(request, cluster))
        assert optimized.makespan == reference.makespan
        assert optimized.num_tasks == reference.num_tasks
        assert optimized.bytes_by_kind == reference.bytes_by_kind
        assert optimized.port_busy_seconds == reference.port_busy_seconds

    @pytest.mark.parametrize("name", ["conventional", "rp", "pipe_b"])
    def test_multi_block(self, name):
        cluster = build_flat_cluster(17)
        request = _flat_request(RSCode(14, 10), [0, 1, 2], ("node14", "node15", "node16"))
        scheme = SCHEMES[name]
        optimized = Simulator(scheme.build_graph(request, cluster)).run()
        reference = run_reference(scheme.build_graph(request, cluster))
        assert optimized.makespan == reference.makespan

    @pytest.mark.parametrize(
        "code", [LRCCode(8, 2, 2), RotatedRSCode(9, 6)], ids=["lrc", "rotated"]
    )
    def test_rack_topology_code_families(self, code):
        cluster = build_rack_cluster(3, 4, 500e6)
        names = cluster.node_names()
        stripe = StripeInfo(code, {i: names[i % len(names)] for i in range(code.n)})
        request = RepairRequest(stripe, [1], names[-1], 2 * MiB, 256 * KiB)
        for scheme in (ConventionalRepair(), RepairPipelining("rp")):
            optimized = Simulator(scheme.build_graph(request, cluster)).run()
            reference = run_reference(scheme.build_graph(request, cluster))
            assert optimized.makespan == reference.makespan
            assert optimized.port_busy_seconds == reference.port_busy_seconds

    def test_identical_task_start_order(self):
        cluster = build_flat_cluster(17)
        request = _flat_request(RSCode(9, 6), [0], "node16")
        scheme = RepairPipelining("rp")

        sim = Simulator(scheme.build_graph(request, cluster), trace=True)
        sim.run()
        optimized_order = [t.name for t in sim.trace]

        graph = scheme.build_graph(request, cluster)
        engine = ReferenceSimulator()
        reference_order = []
        engine.on_task_start = lambda task: reference_order.append(task.name)
        run_reference(graph, engine=engine)
        assert optimized_order == reference_order


class TestDynamicParity:
    def test_staggered_batches_share_ports(self):
        """Two graphs submitted over time contend identically on both engines."""

        def build(ports):
            a, b = ports
            graph1 = TaskGraph()
            first = graph1.add_task("g1.t1", [a], size_bytes=100.0)
            graph1.add_task("g1.t2", [a, b], size_bytes=50.0, deps=[first])
            graph2 = TaskGraph()
            head = graph2.add_task("g2.t1", [b], size_bytes=80.0)
            graph2.add_task("g2.t2", [a], size_bytes=120.0, deps=[head])
            return graph1, graph2

        finishes = {}
        for label, engine_cls in (
            ("optimized", DynamicSimulator),
            ("reference", ReferenceSimulator),
        ):
            ports = (Port("a", 10.0), Port("b", 10.0))
            graph1, graph2 = build(ports)
            engine = engine_cls()
            done = []
            engine.submit(graph1, 0.0, on_complete=done.append)
            engine.submit(graph2, 3.0, on_complete=done.append)
            final = engine.drain()
            finishes[label] = (done, final, [p.busy_seconds for p in ports])
        assert finishes["optimized"] == finishes["reference"]

    def test_zero_service_and_same_instant_ties(self):
        """Zero-size tasks and same-instant submissions break ties identically."""

        def run(engine_cls):
            port = Port("p", 1000.0)
            sync = Port("sync", None)
            graph = TaskGraph()
            first = graph.add_task("zero1", [port], size_bytes=0.0)
            graph.add_task("zero2", [port, sync], size_bytes=0.0, deps=[first])
            graph.add_task("real", [port], size_bytes=500.0, deps=[first])
            other = TaskGraph()
            other.add_task("rival", [port], size_bytes=250.0)
            engine = engine_cls()
            order = []
            engine.on_task_start = lambda t: order.append((t.name, engine.now))
            engine.submit(graph, 0.0)
            engine.submit(other, 0.0)
            final = engine.drain()
            return order, final, port.busy_seconds

        assert run(DynamicSimulator) == run(ReferenceSimulator)

    def test_on_complete_chained_submission(self):
        """Callbacks submitting follow-up graphs replay identically."""

        def run(engine_cls):
            port = Port("p", 100.0)
            engine = engine_cls()
            events = []

            def chain(finish_time):
                events.append(("first-done", finish_time))
                follow = TaskGraph()
                follow.add_task("follow", [port], size_bytes=300.0)
                engine.submit(
                    follow,
                    on_complete=lambda t: events.append(("second-done", t)),
                )

            graph = TaskGraph()
            graph.add_task("lead", [port], size_bytes=200.0)
            engine.submit(graph, 1.0, on_complete=chain)
            final = engine.drain()
            return events, final

        assert run(DynamicSimulator) == run(ReferenceSimulator)


class TestReferenceApi:
    def test_submit_in_the_past_rejected(self):
        engine = ReferenceSimulator()
        engine.run_until(10.0)
        graph = TaskGraph()
        graph.add_task("t", [], overhead=1.0)
        with pytest.raises(ValueError, match="before current time"):
            engine.submit(graph, 5.0)

    def test_double_submission_rejected(self):
        engine = ReferenceSimulator()
        graph = TaskGraph()
        graph.add_task("t", [], overhead=1.0)
        engine.submit(graph, 5.0)
        with pytest.raises(ValueError, match="already belongs"):
            engine.submit(graph, 6.0)

    def test_empty_graph_completes_at_arrival(self):
        engine = ReferenceSimulator()
        done = []
        engine.submit(TaskGraph(), 4.0, on_complete=done.append)
        assert engine.drain() == 4.0
        assert done == [4.0]
        assert engine.pending_batches == 0

    def test_run_until_advances_idle_clock(self):
        engine = ReferenceSimulator()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_deadlock_detected(self):
        graph = TaskGraph()
        stuck = Task("stuck", [])
        graph.add(stuck)
        # A dependency outside the graph that no batch will ever complete;
        # mark the graph validated to reach the engine's defensive check.
        orphan = Task("orphan", [])
        stuck.after(orphan)
        graph.validated = True
        engine = ReferenceSimulator()
        engine.submit(graph)
        with pytest.raises(RuntimeError, match="deadlocked"):
            engine.drain()

    def test_recycle_called_before_on_complete(self):
        engine = ReferenceSimulator()
        port = Port("p", 100.0)
        graph = TaskGraph()
        graph.add_task("t", [port], size_bytes=100.0)
        calls = []
        engine.submit(
            graph,
            on_complete=lambda t: calls.append("complete"),
            recycle=lambda g: calls.append("recycle"),
        )
        engine.drain()
        assert calls == ["recycle", "complete"]


class TestRecording:
    def test_holds_cover_traffic_and_never_overlap(self):
        cluster = build_flat_cluster(17)
        request = _flat_request(RSCode(9, 6), [0], "node16")
        graph = ConventionalRepair().build_graph(request, cluster)
        engine = ReferenceSimulator(record_holds=True)
        result = run_reference(graph, engine=engine)
        assert engine.holds
        assert engine.event_times == sorted(engine.event_times)
        per_port = {}
        booked = {}
        for hold in engine.holds:
            per_port.setdefault(hold.port_name, []).append(hold)
            booked[hold.port_name] = booked.get(hold.port_name, 0.0) + hold.size_bytes
        for holds in per_port.values():
            for previous, current in zip(holds, holds[1:]):
                assert current.start >= previous.end
        for port in graph.ports():
            assert booked.get(port.name, 0.0) == pytest.approx(port.busy_bytes)
        assert result.makespan == pytest.approx(max(h.end for h in engine.holds))
