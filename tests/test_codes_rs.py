"""Unit tests for systematic Reed-Solomon codes."""

import pytest

from repro.codes import RSCode
from repro.codes.base import DecodeError
from conftest import random_payload


class TestConstruction:
    def test_basic_properties(self):
        code = RSCode(14, 10)
        assert code.n == 14
        assert code.k == 10
        assert code.num_parity == 4
        assert code.fault_tolerance() == 4
        assert code.storage_overhead == pytest.approx(1.4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RSCode(5, 5)
        with pytest.raises(ValueError):
            RSCode(5, 0)
        with pytest.raises(ValueError):
            RSCode(5, 8)
        with pytest.raises(ValueError):
            RSCode(300, 10)
        with pytest.raises(ValueError):
            RSCode(9, 6, construction="unknown")

    def test_systematic_generator(self):
        code = RSCode(9, 6)
        generator = code.generator_matrix
        for i in range(6):
            assert generator.row(i) == [1 if j == i else 0 for j in range(6)]

    def test_cauchy_construction_is_systematic(self):
        code = RSCode(9, 6, construction="cauchy")
        for i in range(6):
            assert code.generator_matrix.row(i) == [1 if j == i else 0 for j in range(6)]


class TestEncodeDecode:
    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_roundtrip_from_any_k_blocks(self, rng, construction):
        code = RSCode(9, 6, construction=construction)
        data = [random_payload(rng, 256) for _ in range(6)]
        coded = code.encode(data)
        assert all(coded[i].tobytes() == data[i] for i in range(6))
        available = {i: coded[i].tobytes() for i in (1, 2, 4, 6, 7, 8)}
        decoded = code.decode(available)
        for i in range(9):
            assert decoded[i].tobytes() == coded[i].tobytes()

    def test_encode_validates_block_count(self, rs_9_6):
        with pytest.raises(ValueError):
            rs_9_6.encode([b"abc"] * 5)

    def test_encode_validates_block_lengths(self, rs_9_6):
        blocks = [b"abcd"] * 5 + [b"abc"]
        with pytest.raises(ValueError):
            rs_9_6.encode(blocks)

    def test_decode_needs_k_blocks(self, rs_9_6, rng):
        data = [random_payload(rng, 64) for _ in range(6)]
        coded = rs_9_6.encode(data)
        available = {i: coded[i].tobytes() for i in range(5)}
        with pytest.raises(DecodeError):
            rs_9_6.decode(available)

    def test_decode_rejects_bad_indices(self, rs_9_6):
        with pytest.raises(ValueError):
            rs_9_6.decode({42: b"x"})


class TestRepairPlan:
    def test_single_block_plan_uses_k_helpers(self, rs_14_10):
        plan = rs_14_10.repair_plan([0])
        assert plan.num_helpers == 10
        assert 0 not in plan.helpers
        assert plan.failed == (0,)

    def test_plan_reconstructs_data_block(self, rs_14_10, rng):
        data = [random_payload(rng, 128) for _ in range(10)]
        coded = rs_14_10.encode(data)
        plan = rs_14_10.repair_plan([3])
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        assert repaired[3].tobytes() == coded[3].tobytes()

    def test_plan_reconstructs_parity_block(self, rs_14_10, rng):
        data = [random_payload(rng, 128) for _ in range(10)]
        coded = rs_14_10.encode(data)
        plan = rs_14_10.repair_plan([12])
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        assert repaired[12].tobytes() == coded[12].tobytes()

    def test_plan_respects_available_restriction(self, rs_14_10):
        available = [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
        plan = rs_14_10.repair_plan([0], available)
        assert set(plan.helpers) == set(available)

    def test_multi_block_plan(self, rs_14_10, rng):
        data = [random_payload(rng, 96) for _ in range(10)]
        coded = rs_14_10.encode(data)
        plan = rs_14_10.repair_plan([1, 12, 5])
        repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
        for index in (1, 12, 5):
            assert repaired[index].tobytes() == coded[index].tobytes()

    def test_plan_rejects_too_many_failures(self, rs_14_10):
        with pytest.raises(ValueError):
            rs_14_10.repair_plan([0, 1, 2, 3, 4])

    def test_plan_rejects_insufficient_available(self, rs_14_10):
        with pytest.raises(DecodeError):
            rs_14_10.repair_plan([0], available=list(range(1, 10)))

    def test_plan_rejects_overlapping_available(self, rs_14_10):
        with pytest.raises(ValueError):
            rs_14_10.repair_plan([0], available=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9])

    def test_repair_read_count_is_k(self, rs_14_10):
        assert rs_14_10.repair_read_count(0) == 10
        assert rs_14_10.repair_read_count(13) == 10

    def test_reconstruct_requires_all_helpers(self, rs_14_10, rng):
        data = [random_payload(rng, 32) for _ in range(10)]
        coded = rs_14_10.encode(data)
        plan = rs_14_10.repair_plan([0])
        payloads = {h: coded[h].tobytes() for h in plan.helpers[:-1]}
        with pytest.raises(KeyError):
            plan.reconstruct(payloads)
