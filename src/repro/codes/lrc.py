"""Azure-style Local Reconstruction Codes (LRC).

LRC (Huang et al., USENIX ATC'12) trades extra storage for cheap single-block
repairs: the ``k`` data blocks are split into ``l`` local groups, each group
gets a *local parity* (the XOR of its members), and ``r`` *global parities*
protect the whole stripe.  A single failed data block is repaired from its
local group only -- ``k/l`` reads instead of ``k`` -- which is the property
Figure 8(d) of the paper exercises when combining LRC with repair pipelining.

Block layout within a stripe (``n = k + l + r``)::

    [0 .. k-1]           data blocks
    [k .. k+l-1]         local parities (one per group)
    [k+l .. k+l+r-1]     global parities

The paper's Figure 8(d) configuration is ``LRCCode(k=12, local_groups=2,
global_parities=2)``: twelve data blocks in two groups of six.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.codes.base import DecodeError, ErasureCode, RepairPlan
from repro.codes.solver import InsufficientBlocksError, solve_repair_coefficients
from repro.gf.gf256 import gf_mulsum_bytes, gf_pow
from repro.gf.matrix import GFMatrix


class LRCCode(ErasureCode):
    """A ``(k, l, r)`` Local Reconstruction Code.

    Parameters
    ----------
    k:
        Number of data blocks.
    local_groups:
        Number of local groups ``l`` (must divide ``k``).
    global_parities:
        Number of global parity blocks ``r``.
    """

    def __init__(self, k: int, local_groups: int, global_parities: int) -> None:
        if local_groups <= 0:
            raise ValueError("local_groups must be positive")
        if global_parities <= 0:
            raise ValueError("global_parities must be positive")
        if k % local_groups != 0:
            raise ValueError("k must be divisible by the number of local groups")
        n = k + local_groups + global_parities
        super().__init__(n, k)
        self._l = local_groups
        self._r = global_parities
        self._group_size = k // local_groups
        self._generator = self._build_generator()

    # ------------------------------------------------------------ structure
    @property
    def num_local_groups(self) -> int:
        """Number of local groups."""
        return self._l

    @property
    def num_global_parities(self) -> int:
        """Number of global parity blocks."""
        return self._r

    @property
    def group_size(self) -> int:
        """Number of data blocks per local group."""
        return self._group_size

    def group_of(self, block_index: int) -> Optional[int]:
        """Return the local group a block belongs to.

        Data blocks and local parities belong to a group; global parities
        return ``None``.
        """
        if not 0 <= block_index < self.n:
            raise ValueError(f"block index {block_index} outside [0, {self.n})")
        if block_index < self.k:
            return block_index // self._group_size
        if block_index < self.k + self._l:
            return block_index - self.k
        return None

    def data_blocks_of_group(self, group: int) -> List[int]:
        """Return the data block indices of a local group."""
        if not 0 <= group < self._l:
            raise ValueError(f"group {group} outside [0, {self._l})")
        start = group * self._group_size
        return list(range(start, start + self._group_size))

    def local_parity_of_group(self, group: int) -> int:
        """Return the stripe index of the local parity of a group."""
        if not 0 <= group < self._l:
            raise ValueError(f"group {group} outside [0, {self._l})")
        return self.k + group

    def global_parity_indices(self) -> List[int]:
        """Return the stripe indices of the global parity blocks."""
        return list(range(self.k + self._l, self.n))

    # ------------------------------------------------------------ generator
    def _build_generator(self) -> GFMatrix:
        """Build the ``n x k`` generator matrix."""
        rows: List[List[int]] = []
        for i in range(self.k):
            rows.append([1 if j == i else 0 for j in range(self.k)])
        for g in range(self._l):
            members = set(self.data_blocks_of_group(g))
            rows.append([1 if j in members else 0 for j in range(self.k)])
        # Global parities: Vandermonde-style rows with distinct non-trivial
        # evaluation points so they are independent of the local parities.
        for p in range(self._r):
            point = p + 2
            rows.append([gf_pow(point, j) for j in range(self.k)])
        return GFMatrix(rows)

    @property
    def generator_matrix(self) -> GFMatrix:
        """The ``n x k`` generator matrix (coded = G * data)."""
        return self._generator

    # --------------------------------------------------------------- encode
    def encode(self, data_blocks: Sequence[bytes]) -> List[np.ndarray]:
        """Encode ``k`` data blocks into ``n = k + l + r`` coded blocks."""
        if len(data_blocks) != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {len(data_blocks)}")
        length = len(data_blocks[0])
        if any(len(b) != length for b in data_blocks):
            raise ValueError("all data blocks must have the same length")
        return [
            gf_mulsum_bytes(self._generator.row(i), data_blocks)
            for i in range(self.n)
        ]

    # --------------------------------------------------------------- decode
    def decode(self, available: Mapping[int, bytes]) -> List[np.ndarray]:
        """Reconstruct all blocks of a stripe from the available ones.

        Unlike MDS codes, not every set of ``k`` blocks is decodable for LRC;
        the solver checks decodability of the actual failure pattern.
        """
        self.validate_block_indices(list(available))
        failed = [i for i in range(self.n) if i not in available]
        if not failed:
            return [
                np.frombuffer(bytes(available[i]), dtype=np.uint8).copy()
                for i in range(self.n)
            ]
        try:
            helpers, coefficients = solve_repair_coefficients(
                self._generator, failed, sorted(available)
            )
        except InsufficientBlocksError as exc:
            raise DecodeError(str(exc)) from exc
        plan = RepairPlan(tuple(failed), helpers, coefficients)
        repaired = plan.reconstruct({h: available[h] for h in helpers})
        out: List[np.ndarray] = []
        for i in range(self.n):
            if i in repaired:
                out.append(repaired[i])
            else:
                out.append(np.frombuffer(bytes(available[i]), dtype=np.uint8).copy())
        return out

    # --------------------------------------------------------------- repair
    def _compute_repair_plan(
        self,
        failed: Sequence[int],
        available: Optional[Sequence[int]] = None,
    ) -> RepairPlan:
        """Return a repair plan, preferring local-group repairs.

        A single failed data block (or local parity) is repaired from its
        local group: ``group_size`` helper reads with all-ones coefficients.
        Any other pattern falls back to the general solver over whatever
        blocks are available.
        """
        failed = list(failed)
        self.validate_block_indices(failed)
        if available is None:
            available = [i for i in range(self.n) if i not in failed]
        else:
            available = sorted(set(available))
            self.validate_block_indices(available)
            if set(available) & set(failed):
                raise ValueError("available blocks overlap with failed blocks")

        if len(failed) == 1:
            local = self._local_repair_plan(failed[0], available)
            if local is not None:
                return local

        try:
            helpers, coefficients = solve_repair_coefficients(
                self._generator, failed, available
            )
        except InsufficientBlocksError as exc:
            raise DecodeError(str(exc)) from exc
        return RepairPlan(tuple(failed), helpers, coefficients)

    def _local_repair_plan(
        self, failed_index: int, available: Sequence[int]
    ) -> Optional[RepairPlan]:
        """Build a local-group plan for a single failure, if possible."""
        group = self.group_of(failed_index)
        if group is None:
            return None
        members = self.data_blocks_of_group(group) + [self.local_parity_of_group(group)]
        helpers = [m for m in members if m != failed_index]
        if any(h not in available for h in helpers):
            return None
        coefficients = tuple(1 for _ in helpers)
        return RepairPlan((failed_index,), tuple(helpers), (coefficients,))

    def repair_read_count(self, failed_index: int) -> int:
        """Helper reads for a single-block repair (``k/l`` for local repairs)."""
        group = self.group_of(failed_index)
        if group is None:
            return self.k
        return self._group_size
