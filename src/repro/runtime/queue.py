"""Prioritised repair queue.

Permanent failures enqueue one :class:`RepairJob` per lost block.  The queue
orders jobs by *risk of data loss* first -- a stripe that has lost two blocks
of its ``n - k`` fault tolerance must be repaired before a stripe that has
lost one -- and FIFO within a risk level, so no stripe starves.  This is the
scheduling policy real re-replication managers use (HDFS's
``UnderReplicatedBlocks`` priority queues), applied to erasure-coded stripes.

The heap uses lazy deletion: reprioritising a stripe (another of its blocks
just failed) or discarding a stripe (its data is already lost) marks the old
entries stale rather than rebuilding the heap, so every operation stays
``O(log q)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RepairJob:
    """One block awaiting repair.

    Attributes
    ----------
    stripe_id, block_index:
        The block to reconstruct.
    failed_time:
        When the block was lost (MTTR is measured from here).
    enqueue_time:
        When the failure was detected and queued (>= ``failed_time`` by the
        detection delay).
    risk:
        Number of unreadable blocks in the stripe when the job was last
        (re)prioritised; higher risk repairs first.
    """

    stripe_id: int
    block_index: int
    failed_time: float
    enqueue_time: float
    risk: int = 1
    #: Stale-entry marker for lazy heap deletion.
    cancelled: bool = field(default=False, repr=False)


class RepairQueue:
    """Risk-ordered queue of pending repairs."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, float, int, RepairJob]] = []
        self._live: Dict[Tuple[int, int], RepairJob] = {}
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def depth(self) -> int:
        """Number of live (non-stale) jobs queued."""
        return len(self._live)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._live

    def _push_entry(self, job: RepairJob) -> None:
        heapq.heappush(self._heap, (-job.risk, job.enqueue_time, next(self._seq), job))

    def push(self, job: RepairJob) -> None:
        """Queue a job; re-queueing an already-queued block is an error."""
        key = (job.stripe_id, job.block_index)
        if key in self._live:
            raise ValueError(f"block {key} is already queued for repair")
        self._live[key] = job
        self._push_entry(job)

    def pop(self) -> Optional[RepairJob]:
        """Remove and return the highest-risk job, or ``None`` when empty."""
        while self._heap:
            job = heapq.heappop(self._heap)[3]
            if job.cancelled:
                continue
            del self._live[(job.stripe_id, job.block_index)]
            return job
        return None

    def reprioritise(self, stripe_id: int, risk: int) -> int:
        """Raise the risk of every queued job of a stripe.

        Called when another block of the stripe fails while jobs are still
        queued; the stripe's remaining jobs jump ahead of lower-risk work.
        Risk never decreases (a heal does not demote queued repairs below
        work that was already behind them).  Returns the number of jobs
        touched.
        """
        touched = 0
        for key, job in self._live.items():
            if key[0] == stripe_id and risk > job.risk:
                replacement = RepairJob(
                    job.stripe_id,
                    job.block_index,
                    job.failed_time,
                    job.enqueue_time,
                    risk=risk,
                )
                job.cancelled = True
                self._live[key] = replacement
                self._push_entry(replacement)
                touched += 1
        return touched

    def discard_stripe(self, stripe_id: int) -> int:
        """Drop every queued job of a stripe (its data is lost or repaired
        by a batched multi-block request); returns the number dropped."""
        dropped = 0
        for key in [k for k in self._live if k[0] == stripe_id]:
            self._live.pop(key).cancelled = True
            dropped += 1
        return dropped
