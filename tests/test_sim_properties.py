"""Property-based tests of simulator invariants on random task graphs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Port, Simulator, TaskGraph


def _random_graph(seed: int, num_ports: int, num_tasks: int) -> TaskGraph:
    """Build a random DAG: tasks may depend only on earlier tasks."""
    rng = random.Random(seed)
    ports = [Port(f"p{i}", rate=rng.uniform(10.0, 1000.0)) for i in range(num_ports)]
    graph = TaskGraph()
    tasks = []
    for index in range(num_tasks):
        used = rng.sample(ports, rng.randint(1, min(3, num_ports)))
        task = graph.add_task(
            f"t{index}",
            used,
            size_bytes=rng.uniform(0, 500.0),
            overhead=rng.uniform(0, 0.01),
        )
        for candidate in tasks:
            if rng.random() < 0.15:
                task.after(candidate)
        tasks.append(task)
    return graph


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_ports=st.integers(min_value=1, max_value=6),
    num_tasks=st.integers(min_value=1, max_value=40),
)
def test_all_tasks_complete_and_clock_is_monotone(seed, num_ports, num_tasks):
    graph = _random_graph(seed, num_ports, num_tasks)
    result = Simulator(graph).run()
    assert result.num_tasks == num_tasks
    for task in graph.tasks:
        assert task.start_time is not None and task.finish_time is not None
        assert task.finish_time >= task.start_time
    assert result.makespan == max(t.finish_time for t in graph.tasks)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_ports=st.integers(min_value=1, max_value=5),
    num_tasks=st.integers(min_value=1, max_value=30),
)
def test_dependencies_are_respected(seed, num_ports, num_tasks):
    graph = _random_graph(seed, num_ports, num_tasks)
    Simulator(graph).run()
    for task in graph.tasks:
        for dep in task.deps:
            assert task.start_time >= dep.finish_time - 1e-12


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_ports=st.integers(min_value=1, max_value=5),
    num_tasks=st.integers(min_value=1, max_value=30),
)
def test_makespan_bounded_below_by_port_load_and_critical_path(seed, num_ports, num_tasks):
    graph = _random_graph(seed, num_ports, num_tasks)
    result = Simulator(graph).run()
    # lower bound 1: the busiest port must fit all of its service time
    assert result.makespan >= result.max_port_busy_seconds() - 1e-9
    # lower bound 2: the longest dependency chain of task durations
    durations = {}
    longest = 0.0
    for task in graph.tasks:  # tasks are topologically ordered by construction
        chain = max((durations[d.task_id] for d in task.deps), default=0.0)
        durations[task.task_id] = chain + task.duration()
        longest = max(longest, durations[task.task_id])
    assert result.makespan >= longest - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_tasks=st.integers(min_value=1, max_value=25),
)
def test_simulation_is_deterministic(seed, num_tasks):
    first = Simulator(_random_graph(seed, 4, num_tasks)).run()
    second = Simulator(_random_graph(seed, 4, num_tasks)).run()
    assert first.makespan == second.makespan
    assert first.bytes_by_kind == second.bytes_by_kind


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_tasks=st.integers(min_value=2, max_value=25),
)
def test_serial_chain_equals_sum_of_durations(seed, num_tasks):
    rng = random.Random(seed)
    port = Port("p", rate=rng.uniform(10.0, 100.0))
    graph = TaskGraph()
    previous = None
    total = 0.0
    for index in range(num_tasks):
        task = graph.add_task(
            f"t{index}", [port], size_bytes=rng.uniform(1.0, 100.0)
        )
        task.after(previous)
        total += task.duration()
        previous = task
    result = Simulator(graph).run()
    assert abs(result.makespan - total) < 1e-9
