"""End-to-end coverage of the live service plane.

Everything here boots a real in-process deployment -- coordinator, helper
agents and gateway on localhost TCP sockets -- and drives it through the
framed client API.  The headline assertion is *parity*: a block
reconstructed through the live service is byte-identical to the in-process
:class:`repro.ecpipe.ECPipe` repair of the same stripe, for every service
scheme and both paper code shapes.
"""

import asyncio
import hashlib
import random

import pytest

from repro.cluster import DeploymentSpec
from repro.codes import RSCode
from repro.core import StripeInfo
from repro.ecpipe import ECPipe
from repro.service import LocalDeployment, LoadGenerator, ServiceClient
from repro.service.placement import rotated_placement
from repro.service.compare import CompareConfig, run_comparison
from repro.service.protocol import Op, RemoteError, request
from conftest import random_payload

BLOCK_SIZE = 20000  # deliberately not a multiple of the slice size
SLICE_SIZE = 4096


def nodes_for(n):
    """Zero-padded helper names, so sorted order == block-index order."""
    return [f"n{i:02d}" for i in range(n)]


def run(coro):
    return asyncio.run(coro)


async def booted(num_helpers):
    spec = DeploymentSpec.local(num_helpers) if isinstance(num_helpers, int) else num_helpers
    deployment = LocalDeployment(spec=spec)
    await deployment.start()
    return deployment


# ----------------------------------------------------------------- parity
class TestLiveParity:
    """Live reconstruction == in-process reconstruction, byte for byte."""

    @pytest.mark.parametrize("nk", [(9, 6), (14, 10)], ids=["9-6", "14-10"])
    @pytest.mark.parametrize("scheme", ["rp", "pipe_s", "pipe_b", "conventional"])
    def test_live_matches_inprocess(self, rng, nk, scheme):
        n, k = nk
        failed = 3
        code = RSCode(n, k)
        data = [random_payload(rng, BLOCK_SIZE) for _ in range(k)]
        payload = b"".join(data)

        # In-process data plane: same code, same payload, same placement.
        ecpipe = ECPipe(nodes_for(n) + ["gateway"])
        coded = [b.tobytes() for b in code.encode(data)]
        stripe = StripeInfo(code, {i: f"n{i:02d}" for i in range(n)}, stripe_id=1)
        ecpipe.add_stripe(stripe, dict(enumerate(coded)))
        ecpipe.erase_block(1, failed)
        if scheme == "conventional":
            inprocess = ecpipe.repair_conventional(1, [failed], "gateway")[failed]
        elif scheme == "pipe_b":
            inprocess = ecpipe.repair_pipelined(
                1, [failed], "gateway", BLOCK_SIZE, greedy=False
            )[failed]
        else:
            inprocess = ecpipe.repair_pipelined(
                1, [failed], "gateway", SLICE_SIZE, greedy=False
            )[failed]

        async def live():
            deployment = await booted(DeploymentSpec(helpers=nodes_for(n)))
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(1, payload, {"family": "rs", "n": n, "k": k})
                await client.erase(1, failed)
                block, header = await client.read_block(
                    1,
                    failed,
                    scheme=scheme,
                    slice_size=SLICE_SIZE,
                    force_repair=True,
                    greedy=False,
                )
                assert header["repaired"]
                return block
            finally:
                await deployment.stop()

        live_block = run(live())
        assert live_block == coded[failed]  # correct
        assert live_block == inprocess  # and byte-identical to the model

    def test_multi_block_repair_parity(self, rng):
        n, k = 9, 6
        code = RSCode(n, k)
        data = [random_payload(rng, BLOCK_SIZE) for _ in range(k)]
        coded = [b.tobytes() for b in code.encode(data)]

        ecpipe = ECPipe(nodes_for(n) + ["gateway"])
        stripe = StripeInfo(code, {i: f"n{i:02d}" for i in range(n)}, stripe_id=1)
        ecpipe.add_stripe(stripe, dict(enumerate(coded)))
        for i in (0, 5):
            ecpipe.erase_block(1, i)
        inprocess = ecpipe.repair_pipelined(
            1, [0, 5], ["gateway", "gateway"], SLICE_SIZE, greedy=False
        )

        async def live():
            deployment = await booted(DeploymentSpec(helpers=nodes_for(n)))
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(1, b"".join(data), {"family": "rs", "n": n, "k": k})
                for i in (0, 5):
                    await client.erase(1, i)
                reply = await client.repair(
                    1, [0, 5], scheme="rp", slice_size=SLICE_SIZE, greedy=False
                )
                return reply
            finally:
                await deployment.stop()

        reply = run(live())
        for i in (0, 5):
            assert reply["sha256"][str(i)] == hashlib.sha256(coded[i]).hexdigest()
            assert hashlib.sha256(inprocess[i]).hexdigest() == reply["sha256"][str(i)]


# --------------------------------------------------------------- object API
class TestObjectApi:
    def test_put_get_round_trip_unaligned(self, rng):
        # Object size not divisible by k: the tail block is zero-padded and
        # the pad must be trimmed on the way out.
        payload = random_payload(rng, 100001)

        async def scenario():
            deployment = await booted(6)
            try:
                client = ServiceClient(deployment.gateway_address)
                reply = await client.put(4, payload, {"family": "rs", "n": 6, "k": 4})
                assert reply["block_size"] == 25001
                assert reply["sha256"] == hashlib.sha256(payload).hexdigest()
                return await client.get(4)
            finally:
                await deployment.stop()

        assert run(scenario()) == payload

    def test_get_with_lost_block_is_degraded_but_exact(self, rng):
        payload = random_payload(rng, 60000)

        async def scenario():
            deployment = await booted(9)
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(2, payload, {"family": "rs", "n": 9, "k": 6})
                await client.erase(2, 1)
                return await client.get(2)
            finally:
                await deployment.stop()

        assert run(scenario()) == payload

    def test_repair_writes_back_and_relocates(self, rng):
        payload = random_payload(rng, 60000)

        async def scenario():
            deployment = await booted(10)  # one spare node beyond n=9
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(2, payload, {"family": "rs", "n": 9, "k": 6})
                await client.erase(2, 0)
                # Write the reconstructed block to a *different* node.
                reply = await client.repair(2, [0], scheme="rp", to="node9")
                block, header = await client.read_block(2, 0)
                return reply, header

            finally:
                await deployment.stop()

        reply, header = run(scenario())
        assert not header["repaired"]  # served directly from the new replica
        assert header["sha256"] == reply["sha256"]["0"]

    def test_dead_helper_fails_repair_fast_with_remote_error(self, rng):
        payload = random_payload(rng, 60000)

        async def scenario():
            deployment = await booted(9)
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(2, payload, {"family": "rs", "n": 9, "k": 6})
                # Kill the helper holding block 1 (a mandatory hop for the
                # default plan repairing block 0).
                holder = rotated_placement(2, 9, [f"node{i}" for i in range(9)])[1]
                victim = next(
                    s for s in deployment._servers
                    if getattr(s, "node", None) == holder
                )
                await victim.stop()
                with pytest.raises(RemoteError):
                    await client.read_block(2, 0, force_repair=True, greedy=False)
            finally:
                await deployment.stop()

        run(scenario())

    def test_block_lost_mid_chain_surfaces_remote_error(self, rng):
        # A helper that is alive but lost its replica behind the
        # coordinator's back: the hop's read fails, the ERROR propagates
        # back up the chain, and the connection is torn down instead of the
        # upstream hop streaming slices into the void.
        payload = random_payload(rng, 60000)

        async def scenario():
            deployment = await booted(9)
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(2, payload, {"family": "rs", "n": 9, "k": 6})
                holder = rotated_placement(2, 9, [f"node{i}" for i in range(9)])[3]
                agent = next(
                    s for s in deployment._servers
                    if getattr(s, "node", None) == holder
                )
                agent.helper.delete_block("stripe2.block3")
                with pytest.raises(RemoteError):
                    await client.read_block(
                        2, 0, force_repair=True, greedy=False, slice_size=2048
                    )
            finally:
                await deployment.stop()

        run(scenario())

    def test_unknown_stripe_is_remote_error(self):
        async def scenario():
            deployment = await booted(4)
            try:
                client = ServiceClient(deployment.gateway_address)
                with pytest.raises(RemoteError):
                    await client.get(99)
            finally:
                await deployment.stop()

        run(scenario())

    def test_undecodable_repair_reports_error(self, rng):
        payload = random_payload(rng, 6000)

        async def scenario():
            deployment = await booted(5)
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(1, payload, {"family": "rs", "n": 5, "k": 3})
                for block in (0, 1, 2):
                    await client.erase(1, block)
                with pytest.raises(RemoteError):
                    await client.read_block(1, 0, force_repair=True)
                with pytest.raises(RemoteError):
                    await client.read_block(1, 1, force_repair=True)
            finally:
                await deployment.stop()

        run(scenario())


# ------------------------------------------------------------ load generator
class TestLoadGenerator:
    def test_seeded_closed_loop_counts(self, rng):
        payload = random_payload(rng, 30000)
        operations = 20

        async def scenario():
            deployment = await booted(5)
            try:
                client = ServiceClient(deployment.gateway_address)
                await client.put(1, payload, {"family": "rs", "n": 5, "k": 3})
                await client.erase(1, 0)
                generator = LoadGenerator(
                    deployment.gateway_address,
                    {1: 3},
                    seed=42,
                    concurrency=1,
                    slice_size=2048,
                )
                return await generator.run(max_operations=operations)
            finally:
                await deployment.stop()

        report = run(scenario())
        assert report.operations == operations
        assert report.errors == 0
        # Single seeded worker: the block sequence is deterministic, so the
        # degraded-read count is exactly the number of block-0 draws.
        expected_rng = random.Random(42 + 0)
        degraded = sum(
            1
            for _ in range(operations)
            if (expected_rng.randrange(1), expected_rng.randrange(3))[1] == 0
        )
        assert report.degraded_reads == degraded
        assert report.mean_latency > 0
        assert report.latency_percentile(0.95) >= report.latency_percentile(0.5)
        assert set(report.to_dict()) == {
            "operations",
            "errors",
            "degraded_reads",
            "wall_seconds",
            "throughput",
            "mean_latency",
            "p50_latency",
            "p95_latency",
            "p99_latency",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenerator(("h", 1), {})
        with pytest.raises(ValueError):
            LoadGenerator(("h", 1), {1: 3}, concurrency=0)
        report_cls = LoadGenerator(("h", 1), {1: 3})
        assert report_cls is not None


# ----------------------------------------------------------- deployment/infra
class TestDeploymentLifecycle:
    def test_helpers_register_and_stat(self):
        async def scenario():
            deployment = await booted(4)
            try:
                reply = await request(*deployment.coordinator_address, Op.STAT, {})
                assert reply.header["helpers"] == 4
                helpers = await request(*deployment.coordinator_address, Op.HELPERS, {})
                assert sorted(helpers.header["helpers"]) == [f"node{i}" for i in range(4)]
                ping = await request(*deployment.gateway_address, Op.PING, {})
                assert ping.header["role"] == "gateway"
            finally:
                await deployment.stop()

        run(scenario())

    def test_stop_refuses_new_connections(self):
        async def scenario():
            deployment = await booted(3)
            address = deployment.gateway_address
            await deployment.stop()
            with pytest.raises((ConnectionError, OSError)):
                await request(*address, Op.PING, {})

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            deployment = await booted(3)
            try:
                from repro.service import ServiceError

                with pytest.raises(ServiceError):
                    await deployment.start()
            finally:
                await deployment.stop()

        run(scenario())


# ------------------------------------------------------- measured vs simulated
class TestCompareHarness:
    def test_inproc_comparison_report(self):
        config = CompareConfig(
            n=5,
            k=3,
            block_size=32768,
            slice_size=8192,
            repeats=1,
            load_concurrency=1,
            spec=DeploymentSpec.local(5),
        )
        report = run_comparison(config, mode="inproc")
        assert set(report["measured"]) == {"rp", "conventional"}
        for scheme in ("rp", "conventional"):
            assert report["measured"][scheme]["median_seconds"] > 0
            assert report["predicted"][scheme] > 0
            assert report["measured"][scheme]["load"]["errors"] == 0
        assert report["measured_ratio"] > 0
        assert report["predicted_ratio"] > 1  # the simulator's claim
        from repro.service.compare import format_report

        text = format_report(report)
        assert "conventional/rp ratio" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompareConfig(n=3, k=3)
        with pytest.raises(ValueError):
            CompareConfig(repeats=0)
        with pytest.raises(ValueError):
            CompareConfig(n=9, k=6, spec=DeploymentSpec.local(4))
