"""Simulated resources (ports).

A :class:`Port` is a FIFO-served, unit-capacity resource with an optional
service rate.  Ports model node uplinks and downlinks, disks, CPUs, and
shared cross-rack or cross-region links.  Tasks (see :mod:`repro.sim.tasks`)
use one or more ports; a transfer, for example, uses the sender's uplink, the
receiver's downlink and any shared link in between.

Service model (see :mod:`repro.sim.engine` for the full picture):

* a task starts only when every port it uses is idle (FIFO queueing on busy
  ports), which is the paper's notion of a congested link serving one
  transfer after another;
* once started, the task occupies each port for that port's *own* service
  time (``size / rate`` plus the fixed overhead), while the task as a whole
  completes after its slowest port.  A fast port is therefore released early
  when the bottleneck is elsewhere -- e.g. a requestor NIC receiving from
  several throttled edge links concurrently (section 4.1).
"""

from __future__ import annotations

import math
from typing import Optional


class Port:
    """A FIFO-served, unit-capacity resource with an optional bandwidth.

    Parameters
    ----------
    name:
        Human-readable identifier (used in traces and error messages).
    rate:
        Service rate in bytes per second, or ``None`` for a purely
        synchronisation resource that does not bound task duration.
    """

    __slots__ = ("name", "rate", "busy", "busy_bytes", "busy_seconds")

    def __init__(self, name: str, rate: Optional[float] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"port {name!r}: rate must be positive, got {rate}")
        self.name = name
        self.rate = rate
        #: Whether the port is currently occupied by a running task.
        self.busy = False
        #: Total bytes served (for traffic accounting).
        self.busy_bytes = 0.0
        #: Total seconds of service performed.
        self.busy_seconds = 0.0

    def reset(self) -> None:
        """Clear scheduling state before a new simulation run."""
        self.busy = False
        self.busy_bytes = 0.0
        self.busy_seconds = 0.0

    def service_time(self, size_bytes: float) -> float:
        """Seconds needed to serve ``size_bytes`` at this port's rate."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.rate is None or size_bytes == 0:
            return 0.0
        return size_bytes / self.rate

    def utilisation(self, horizon_seconds: float) -> float:
        """Fraction of ``horizon_seconds`` the port spent serving work."""
        if horizon_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / horizon_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "inf" if self.rate is None else f"{self.rate:.3g}"
        return f"Port({self.name!r}, rate={rate})"


def effective_rate(ports) -> float:
    """Return the bottleneck rate of a set of ports (``inf`` if none is rated)."""
    rates = [p.rate for p in ports if p.rate is not None]
    if not rates:
        return math.inf
    return min(rates)
