"""Figure 8(f): multi-block repair time versus number of failed blocks.

Repairs 1 to 4 failed blocks of a (14, 10) stripe, each reconstructed at a
distinct requestor.  Observations to reproduce: conventional repair is
roughly flat in the number of failures (it always reads k blocks and then
forwards the extra reconstructions), repair pipelining grows linearly with
the number of failures, and repair pipelining stays well below conventional
repair even for a four-block repair (~60% less in the paper).
"""

from repro.bench import ExperimentTable, reduction_percent, standard_cluster, standard_stripe
from repro.bench.harness import default_block_size, default_slice_size
from repro.codes import RSCode
from repro.core import ConventionalRepair, RepairPipelining, RepairRequest


def run_experiment():
    """Regenerate the Figure 8(f) series; returns the result table."""
    cluster = standard_cluster()
    stripe = standard_stripe(RSCode(14, 10))
    block_size, slice_size = default_block_size(), default_slice_size()
    table = ExperimentTable(
        "Figure 8(f): multi-block repair time (s) vs number of failed blocks",
        ["failures", "conventional", "repair_pipelining", "rp_vs_conv_%"],
    )
    for failures in (1, 2, 3, 4):
        failed = list(range(failures))
        requestors = tuple(f"node{16 - i}" for i in range(failures))
        request = RepairRequest(stripe, failed, requestors, block_size, slice_size)
        conventional = ConventionalRepair().repair_time(request, cluster).makespan
        rp = RepairPipelining("rp").repair_time(request, cluster).makespan
        table.add_row(failures, conventional, rp, reduction_percent(conventional, rp))
    return table


def test_fig8f_multi_block_repair(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()
    rows = table.as_dicts()
    conventional = [float(r["conventional"]) for r in rows]
    rp = [float(r["repair_pipelining"]) for r in rows]
    # conventional repair is roughly flat in f; RP grows roughly linearly
    assert max(conventional) / min(conventional) < 1.6
    assert 3.0 < rp[3] / rp[0] < 5.0
    # RP still repairs four blocks much faster than conventional repair
    assert float(rows[3]["rp_vs_conv_%"]) > 40.0


if __name__ == "__main__":
    run_experiment().show()
