"""Parallel experiment engine.

The paper's evaluation -- and the month-long runtime of
:mod:`repro.runtime` -- are single-process, single-trial runs.  This
subpackage makes the scenario space cheap to explore:

:class:`~repro.exp.scenario.Scenario` / :func:`~repro.exp.scenario.expand`
    A declarative spec (code, topology, failure model, foreground workload,
    repair scheme) and its cartesian expansion into named trial matrices.
:func:`~repro.exp.seeds.derive_seed`
    ``SHA-256(root_seed | trace_key | trial)`` -- per-trial master seeds
    that depend only on *what* runs, never on where, so sharding cannot
    change results; scenarios sharing a ``trace_key`` draw paired traces.
:func:`~repro.exp.runner.run_matrix` / :class:`~repro.exp.runner.MatrixResult`
    ``multiprocessing``-sharded trial execution returning serialisable
    per-trial results in canonical order.
:func:`~repro.exp.aggregate.aggregate_matrix` /
:func:`~repro.exp.aggregate.aggregate_table`
    Cross-trial reduction (mean / std / 95% CI per metric, via
    :mod:`repro.analysis.stats`) rendered as standard experiment tables.

The engine's contract, pinned by the determinism tests: for a fixed root
seed, the aggregated tables are **byte-identical for any worker count**.
``REPRO_EXP_WORKERS`` / ``REPRO_EXP_TRIALS`` / ``REPRO_EXP_ROOT_SEED`` are
the conventional environment knobs benchmarks read (see EXPERIMENTS.md).
"""

from repro.exp.aggregate import (
    ScenarioAggregate,
    aggregate_matrix,
    aggregate_table,
)
from repro.exp.runner import (
    ENGINES,
    MatrixResult,
    TrialResult,
    default_workers,
    run_matrix,
    run_trial,
)
from repro.exp.scenario import CODE_FAMILIES, TOPOLOGIES, Scenario, expand, make_code
from repro.exp.seeds import derive_seed

__all__ = [
    "Scenario",
    "expand",
    "make_code",
    "derive_seed",
    "ENGINES",
    "run_matrix",
    "run_trial",
    "default_workers",
    "MatrixResult",
    "TrialResult",
    "aggregate_matrix",
    "aggregate_table",
    "ScenarioAggregate",
    "CODE_FAMILIES",
    "TOPOLOGIES",
]
