"""The continuous cluster runtime.

:class:`ClusterRuntime` turns the per-figure, single-shot experiments into a
long-horizon simulator of a *running* erasure-coded cluster:

1. a failure trace (transient block outages + permanent node failures, the
   section 2.3 mix) is drawn over a configurable horizon of simulated
   wall-clock time;
2. permanent failures are detected after a delay and enqueued on a
   risk-prioritised repair queue (:mod:`repro.runtime.queue`);
3. up to ``max_concurrent_repairs`` repairs run at once, each planned by the
   :class:`~repro.ecpipe.coordinator.Coordinator` (greedy
   least-recently-selected helpers, section 3.3), compiled by the configured
   repair scheme (``conventional`` / ``ppr`` / ``rp`` / ...), optionally
   capped by the per-node repair throttle, and executed as a task graph on
   the shared :class:`~repro.sim.engine.DynamicSimulator` -- so repair
   traffic genuinely queues against foreground traffic on the same NIC and
   disk ports;
4. a Poisson foreground read workload runs throughout; reads that hit an
   unreadable block become degraded reads through the same repair scheme,
   which is where repair pipelining's tail-latency advantage shows up under
   load;
5. reconstructed blocks are relocated to replacement nodes (metadata
   follows), dead nodes rejoin empty after a provisioning delay, and a
   stripe that exceeds its fault tolerance before repair catches up is a
   recorded **data-loss event**.

Every stochastic choice derives from one master seed, and the event loops
(both the external injection loop here and the port-level loop in the
simulator) break ties deterministically -- two runs with the same seed and
configuration replay the identical month, metric for metric.

Simplifications versus a real cluster, chosen to keep the model at the
paper's level of abstraction: repairs in flight are not interrupted by new
failures (their helpers' ports keep serving), a lost stripe stays lost even
if a transient outage later heals, and repair writes at the replacement node
are folded into the final transfer rather than modelled as a separate disk
pass.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.conventional import ConventionalRepair
from repro.core.pipelining import RepairPipelining
from repro.core.planner import RepairScheme
from repro.core.ppr import PPRRepair
from repro.core.request import StripeInfo
from repro.core.templates import (
    GraphTemplate,
    PortResolver,
    RebindableGraphTemplate,
    TemplateCache,
    role_pattern,
)
from repro.ecpipe.coordinator import Coordinator
from repro.runtime.foreground import (
    READ_DISTRIBUTIONS,
    ForegroundOp,
    ForegroundWorkload,
    build_read_graph,
)
from repro.runtime.metrics import MetricsCollector
from repro.runtime.queue import RepairJob, RepairQueue
from repro.runtime.state import PERMANENT, TRANSIENT, ClusterState
from repro.runtime.throttle import RepairThrottle
from repro.sim.engine import DynamicSimulator
from repro.workloads.failures import (
    FailureEvent,
    FailureGenerator,
    RackBurstFailureGenerator,
)

#: Repair schemes the runtime can dispatch.
SCHEMES = ("conventional", "ppr", "rp", "pipe_s", "pipe_b")

#: Failure models the runtime can draw traces from.
FAILURE_MODELS = ("independent", "rack_burst")

#: Seconds per simulated day (convenience for configs and reports).
DAY = 86400.0


def make_scheme(name: str) -> RepairScheme:
    """Instantiate a repair scheme by its benchmark name."""
    if name == "conventional":
        return ConventionalRepair()
    if name == "ppr":
        return PPRRepair()
    if name in ("rp", "pipe_s", "pipe_b"):
        return RepairPipelining(name)
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEMES}")


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of a continuous runtime run.

    Attributes
    ----------
    horizon_seconds:
        Length of the failure/foreground injection window.  The run itself
        ends when the last in-flight work completes, so MTTR is never
        truncated.
    block_size, slice_size:
        Repair geometry (defaults mirror the scaled-down benchmarks).
    scheme:
        Repair scheme used for both background repairs and degraded reads.
    max_concurrent_repairs:
        Dispatch width of the repair manager.
    repair_bandwidth_cap:
        Per-node repair egress cap in bytes/second; ``None`` disables
        throttling.
    detection_delay:
        Seconds between a permanent failure and its jobs entering the queue
        (failure-detector timeout).
    node_rejoin_seconds:
        Seconds until a replacement node comes up (empty) under the failed
        node's name.
    mean_failure_interarrival, transient_fraction, transient_duration_mean:
        Failure-process parameters (see
        :class:`~repro.workloads.failures.FailureGenerator`).
    failure_model:
        ``"independent"`` (the default Poisson mix) or ``"rack_burst"``
        (correlated node failures via
        :class:`~repro.workloads.failures.RackBurstFailureGenerator`; the
        transient stream keeps its independent rate).
    racks:
        Failure domains for the rack-burst model, as tuples of node names;
        required when ``failure_model="rack_burst"``.
    burst_mean_interarrival, burst_size_mean, burst_span_seconds:
        Rack-burst parameters (burst arrival rate, mean nodes per burst,
        spread of one burst's failures over time).
    foreground_rate:
        Foreground read arrivals per second (0 disables the workload).
    foreground_read_size:
        Bytes per foreground read; defaults to ``block_size``.
    read_distribution, zipf_alpha:
        Stripe popularity of the foreground mix: ``"uniform"`` or ``"zipf"``
        hot spots (see :class:`~repro.runtime.foreground.ForegroundWorkload`).
    clients:
        Nodes issuing foreground reads; defaults to every cluster node.
    seed:
        Master seed; every stochastic component derives from it.

    The config is a frozen dataclass of primitives (tuples, floats,
    strings), so it pickles cleanly across process boundaries -- the
    parallel experiment engine (:mod:`repro.exp`) ships one per trial to its
    worker processes.
    """

    horizon_seconds: float
    block_size: int = 8 * 1024 * 1024
    slice_size: int = 1024 * 1024
    scheme: str = "rp"
    max_concurrent_repairs: int = 8
    repair_bandwidth_cap: Optional[float] = None
    detection_delay: float = 30.0
    node_rejoin_seconds: float = 3600.0
    mean_failure_interarrival: float = 6 * 3600.0
    transient_fraction: float = 0.9
    transient_duration_mean: float = 900.0
    failure_model: str = "independent"
    racks: Tuple[Tuple[str, ...], ...] = ()
    burst_mean_interarrival: float = 24 * 3600.0
    burst_size_mean: float = 2.0
    burst_span_seconds: float = 300.0
    foreground_rate: float = 0.0
    foreground_read_size: Optional[int] = None
    read_distribution: str = "uniform"
    zipf_alpha: float = 1.1
    clients: Tuple[str, ...] = ()
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if self.block_size <= 0 or self.slice_size <= 0:
            raise ValueError("block_size and slice_size must be positive")
        if self.slice_size > self.block_size:
            raise ValueError("slice_size cannot exceed block_size")
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")
        if self.max_concurrent_repairs <= 0:
            raise ValueError("max_concurrent_repairs must be positive")
        if self.detection_delay < 0 or self.node_rejoin_seconds < 0:
            raise ValueError("delays must be non-negative")
        if self.foreground_rate < 0:
            raise ValueError("foreground_rate must be non-negative")
        if self.foreground_read_size is not None and self.foreground_read_size <= 0:
            raise ValueError("foreground_read_size must be positive when set")
        if self.failure_model not in FAILURE_MODELS:
            raise ValueError(
                f"unknown failure_model {self.failure_model!r}; "
                f"expected one of {FAILURE_MODELS}"
            )
        if self.failure_model == "rack_burst":
            if not self.racks or any(not rack for rack in self.racks):
                raise ValueError(
                    "failure_model='rack_burst' requires non-empty racks"
                )
            if self.burst_mean_interarrival <= 0:
                raise ValueError("burst_mean_interarrival must be positive")
            if self.burst_size_mean < 1.0:
                raise ValueError("burst_size_mean must be at least 1")
            if self.burst_span_seconds < 0:
                raise ValueError("burst_span_seconds must be non-negative")
        if self.read_distribution not in READ_DISTRIBUTIONS:
            raise ValueError(
                f"unknown read_distribution {self.read_distribution!r}; "
                f"expected one of {READ_DISTRIBUTIONS}"
            )
        if self.read_distribution == "zipf" and self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be positive")

    @property
    def read_size(self) -> int:
        """Effective foreground read size in bytes."""
        return (
            self.block_size
            if self.foreground_read_size is None
            else self.foreground_read_size
        )


@dataclass
class RuntimeReport:
    """Outcome of one runtime run.

    The report is serialisable: :meth:`to_dict` flattens it to plain
    primitives (dropping the raw collector) and :meth:`from_dict` restores
    it, which is how the parallel experiment engine transports per-trial
    results out of its worker processes and how same-seed replays are
    compared with ``==``.
    """

    #: Flat deterministic metric summary (see :meth:`MetricsCollector.summary`).
    summary: Dict[str, float]
    #: The raw collector, for custom reductions; ``None`` after a
    #: serialisation round trip.
    metrics: Optional[MetricsCollector] = field(repr=False, default=None)
    #: Simulated time at which the cluster went quiet.
    final_time: float = 0.0
    #: Total simulator tasks executed.
    tasks_completed: int = 0
    #: Wall-clock performance counters (cache hit rates etc.); intentionally
    #: excluded from :meth:`to_dict` -- they describe the implementation, not
    #: the simulated cluster, and must never leak into replay comparisons.
    perf: Dict[str, float] = field(repr=False, compare=False, default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-primitive form of the report (summary, final time, tasks).

        The raw collector is intentionally excluded: everything the
        aggregation layer consumes lives in ``summary``, whose key order is
        fixed, so two reports serialise identically iff their runs replayed
        identically.
        """
        return {
            "summary": dict(self.summary),
            "final_time": self.final_time,
            "tasks_completed": self.tasks_completed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RuntimeReport":
        """Rebuild a report (without its collector) from :meth:`to_dict`."""
        return cls(
            summary=dict(payload["summary"]),  # type: ignore[arg-type]
            metrics=None,
            final_time=float(payload["final_time"]),  # type: ignore[arg-type]
            tasks_completed=int(payload["tasks_completed"]),  # type: ignore[arg-type]
        )


class ClusterRuntime:
    """Event-driven continuous simulation of an erasure-coded cluster.

    Parameters
    ----------
    cluster:
        The cluster (its ports are shared by repairs and foreground reads).
    stripes:
        The stripes under management; placements are mutated in place as
        repairs relocate blocks.
    config:
        Run parameters.
    """

    def __init__(
        self,
        cluster: Cluster,
        stripes: Sequence[StripeInfo],
        config: RuntimeConfig,
        engine=None,
        use_templates: bool = True,
    ) -> None:
        if not stripes:
            raise ValueError("at least one stripe is required")
        self.cluster = cluster
        self.stripes = list(stripes)
        self.config = config
        self.scheme = make_scheme(config.scheme)
        self.coordinator = Coordinator(cluster=cluster)
        for stripe in self.stripes:
            self.coordinator.register_stripe(stripe)
        self.state = ClusterState(self.stripes, cluster.node_names())
        self.queue = RepairQueue()
        self.throttle = RepairThrottle(cluster, config.repair_bandwidth_cap)
        self.metrics = MetricsCollector()
        #: The discrete-event executor.  Injectable so the conformance
        #: harness (:mod:`repro.conformance`) can run the identical trial on
        #: the independent :class:`~repro.sim.reference.ReferenceSimulator`;
        #: any object with the ``DynamicSimulator`` submission API works.
        self.sim = DynamicSimulator() if engine is None else engine
        #: Whether graph/read templates may be used.  The conformance
        #: harness turns them off so every graph is compiled from scratch by
        #: the scheme layer, making the template cache one of the layers the
        #: differential comparison independently checks.
        self.use_templates = use_templates
        self._clients = list(config.clients) or cluster.node_names()
        self._active_repairs = 0
        self._inflight: set = set()
        self._deferred: Dict[int, List[RepairJob]] = {}
        self._events: List[tuple] = []
        self._event_seq = itertools.count()
        self._op_seq = itertools.count()
        self._placement_rng = random.Random()
        #: Rebindable repair/degraded-read graph templates keyed by
        #: (is_repair, node-coincidence pattern of helper path + requestor).
        #: The greedy scheduler rotates helper *nodes* constantly but the
        #: structural pattern almost never changes, so this cache converges
        #: to a handful of entries with a ~100% hit rate; a ``None`` value
        #: records a graph shape the resolver could not faithfully rebind
        #: (those keep building directly).
        self._graph_templates: Dict[
            Tuple[bool, Tuple[int, ...]], Optional[RebindableGraphTemplate]
        ] = {}
        self._graph_template_hits = 0
        self._graph_template_misses = 0
        self._port_resolver = PortResolver(cluster, self.throttle)
        #: Normal-read graph templates keyed by (source, client); bounded by
        #: the node-pair count, the LRU cap is just a guard.
        self._read_templates: TemplateCache = TemplateCache(maxsize=4096)

    # ------------------------------------------------------------ event loop
    def _push_event(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (time, next(self._event_seq), kind, payload))

    def run(self) -> RuntimeReport:
        """Simulate the configured horizon and return the metric report."""
        cfg = self.config
        # The engine's clock starts at zero: clear any scheduling state a
        # previous run left on the (reusable) cluster and throttle ports.
        # Statistics keep accumulating, as they always have.
        for port in self.cluster.all_ports():
            port.clear_schedule()
        for port in self.throttle.ports():
            port.clear_schedule()
        master = random.Random(cfg.seed)
        failure_rng = random.Random(master.randrange(2**63))
        foreground_rng = random.Random(master.randrange(2**63))
        self._placement_rng = random.Random(master.randrange(2**63))

        if cfg.failure_model == "rack_burst":
            # The transient stream keeps the independent model's effective
            # rate (fraction of the combined arrival process) so the two
            # models are comparable outage-for-outage.
            transient_mean = cfg.mean_failure_interarrival / max(
                cfg.transient_fraction, 1e-12
            )
            trace = RackBurstFailureGenerator(
                self.stripes,
                racks=cfg.racks,
                transient_mean_interarrival=transient_mean,
                burst_mean_interarrival=cfg.burst_mean_interarrival,
                burst_size_mean=cfg.burst_size_mean,
                burst_span_seconds=cfg.burst_span_seconds,
                rng=failure_rng,
                transient_duration_mean=cfg.transient_duration_mean,
            ).generate_until(cfg.horizon_seconds)
        else:
            trace = FailureGenerator(
                self.stripes,
                transient_fraction=cfg.transient_fraction,
                mean_interarrival=cfg.mean_failure_interarrival,
                rng=failure_rng,
                transient_duration_mean=cfg.transient_duration_mean,
            ).generate_until(cfg.horizon_seconds)
        # The full failure trace and foreground schedule are known up front:
        # keep them as one time-sorted list and merge with the (small) heap
        # of events scheduled during the run (detect/restore/rejoin), rather
        # than pushing tens of thousands of arrivals through the heap.  Tie
        # order is exactly the old single-heap order because the sequence
        # numbers are assigned in the same push order and comparisons never
        # reach the payload.
        seq = self._event_seq
        static: List[tuple] = [
            (event.time, next(seq), "failure", event) for event in trace
        ]
        if cfg.foreground_rate > 0:
            workload = ForegroundWorkload(
                num_stripes=len(self.stripes),
                blocks_per_stripe=max(s.code.n for s in self.stripes),
                clients=self._clients,
                rate_per_sec=cfg.foreground_rate,
                rng=foreground_rng,
                distribution=cfg.read_distribution,
                zipf_alpha=cfg.zipf_alpha,
            )
            static.extend(
                (op.time, next(seq), "op", op)
                for op in workload.arrivals(cfg.horizon_seconds)
            )
        static.sort()

        handlers = {
            "failure": self._handle_failure,
            "op": self._handle_op,
            "detect": self._handle_detect,
            "restore": self._handle_restore,
            "rejoin": self._handle_rejoin,
        }
        dynamic = self._events
        run_until = self.sim.run_until
        heappop = heapq.heappop
        index, count = 0, len(static)
        while index < count or dynamic:
            if index < count and (not dynamic or static[index] < dynamic[0]):
                event = static[index]
                index += 1
            else:
                event = heappop(dynamic)
            time, _, kind, payload = event
            run_until(time)
            handlers[kind](payload, time)

        self.sim.run_until(cfg.horizon_seconds)
        final_time = self.sim.drain()

        code = self.stripes[0].code
        summary = self.metrics.summary(
            n=code.n,
            k=code.k,
            num_nodes=len(self.cluster),
            horizon_seconds=cfg.horizon_seconds,
        )
        return RuntimeReport(
            summary=summary,
            metrics=self.metrics,
            final_time=final_time,
            tasks_completed=self.sim.tasks_completed,
            perf=self.perf_counters(),
        )

    def perf_counters(self) -> Dict[str, float]:
        """Implementation-side counters for the perf benchmarks.

        These describe how the run was *executed* (cache effectiveness), not
        what it simulated, and are deliberately absent from
        :meth:`RuntimeReport.to_dict`.
        """
        code = self.stripes[0].code
        return {
            "plan_cache_hits": float(code.plan_cache_hits),
            "plan_cache_misses": float(code.plan_cache_misses),
            "graph_template_hits": float(self._graph_template_hits),
            "graph_template_misses": float(self._graph_template_misses),
            "graph_template_entries": float(len(self._graph_templates)),
            "read_template_hits": float(self._read_templates.hits),
            "read_template_misses": float(self._read_templates.misses),
            "tasks_completed": float(self.sim.tasks_completed),
        }

    # -------------------------------------------------------------- failures
    def _handle_failure(self, event: FailureEvent, now: float) -> None:
        # Effective failures are counted inside the handlers, after the
        # already-down checks, so absorbed no-op events (a failure drawn for
        # a node that is already dead, or a block already unreadable) do not
        # inflate the failure rate fed to the MTTDL model.
        if event.kind == "transient":
            self._handle_transient(event, now)
        else:
            self._handle_node_failure(event.node, now)

    def _handle_transient(self, event: FailureEvent, now: float) -> None:
        sid, block = event.stripe_id, event.block_index
        if self.state.is_lost(sid):
            return
        if not self.state.is_block_available(sid, block):
            return  # already down (overlapping outage)
        self.metrics.record_failure_event("transient")
        token = self.state.fail_block(sid, block, TRANSIENT, now)
        self._check_data_loss(sid, now)
        if not self.state.is_lost(sid):
            self.queue.reprioritise(sid, self.state.failed_count(sid))
        duration = (
            event.duration
            if event.duration is not None
            else self.config.transient_duration_mean
        )
        self._push_event(now + duration, "restore", (sid, block, token))

    def _handle_node_failure(self, node: str, now: float) -> None:
        if not self.state.is_node_alive(node):
            return  # already down; the replacement absorbs this event
        self.metrics.record_failure_event("node")
        self.state.kill_node(node)
        self._push_event(now + self.config.node_rejoin_seconds, "rejoin", node)
        for location in self.coordinator.blocks_on_node(node):
            sid, block = location.stripe_id, location.block_index
            if self.state.is_lost(sid):
                continue
            existing = self.state.block_failure(sid, block)
            if existing is not None and existing.kind == PERMANENT:
                continue  # already lost and queued/in flight
            self.state.fail_block(sid, block, PERMANENT, now)
            self._check_data_loss(sid, now)
            if self.state.is_lost(sid):
                continue
            self.queue.reprioritise(sid, self.state.failed_count(sid))
            self._push_event(
                now + self.config.detection_delay, "detect", (sid, block, now)
            )

    def _check_data_loss(self, sid: int, now: float) -> None:
        stripe = self.state.stripes[sid]
        if self.state.is_lost(sid):
            return
        if self.state.failed_count(sid) > stripe.code.fault_tolerance():
            self.state.mark_lost(sid)
            self.metrics.data_loss_events.append((now, sid))
            if self.queue.discard_stripe(sid):
                self.metrics.record_queue_depth(now, self.queue.depth())
            self._deferred.pop(sid, None)

    def _handle_restore(self, payload: Tuple[int, int, int], now: float) -> None:
        sid, block, token = payload
        self.state.heal_block(sid, block, token)
        # Helpers may have become decodable again; retry stalled dispatches.
        self._dispatch(now)

    def _handle_rejoin(self, node: str, now: float) -> None:
        self.state.revive_node(node)
        self._dispatch(now)

    # --------------------------------------------------------------- repairs
    def _handle_detect(self, payload: Tuple[int, int, float], now: float) -> None:
        sid, block, failed_time = payload
        if self.state.is_lost(sid):
            return
        failure = self.state.block_failure(sid, block)
        if failure is None or failure.kind != PERMANENT:
            return
        if (sid, block) in self.queue:
            return
        self.queue.push(
            RepairJob(
                sid,
                block,
                failed_time,
                now,
                risk=self.state.failed_count(sid),
            )
        )
        self.metrics.record_queue_depth(now, self.queue.depth())
        self._dispatch(now)

    def _choose_replacement(self, stripe: StripeInfo) -> Optional[str]:
        """A live node not hosting any block of the stripe, or ``None``."""
        occupied = set(stripe.block_locations.values())
        candidates = [n for n in self.state.live_nodes() if n not in occupied]
        if not candidates:
            return None
        return self._placement_rng.choice(candidates)

    def _dispatch(self, now: float) -> None:
        """Start queued repairs up to the concurrency limit.

        Jobs that cannot run *right now* (no replacement node, not enough
        readable helpers) are set aside for this pass and re-queued at the
        end, so one stuck stripe never head-of-line blocks the rest; a
        restore, rejoin or repair completion retriggers dispatch.
        """
        cfg = self.config
        blocked: List[RepairJob] = []
        while self._active_repairs < cfg.max_concurrent_repairs:
            job = self.queue.pop()
            if job is None:
                break
            self.metrics.record_queue_depth(now, self.queue.depth())
            sid = job.stripe_id
            if self.state.is_lost(sid):
                continue
            if sid in self._inflight:
                # One repair per stripe at a time: siblings wait for the
                # in-flight repair to land, then re-enter the queue.
                self._deferred.setdefault(sid, []).append(job)
                continue
            stripe = self.state.stripes[sid]
            target = self._choose_replacement(stripe)
            if target is None:
                blocked.append(job)
                continue
            unavailable = [
                i for i in self.state.failed_blocks(sid) if i != job.block_index
            ]
            try:
                request, path = self.coordinator.plan_repair(
                    sid,
                    [job.block_index],
                    [target],
                    cfg.block_size,
                    cfg.slice_size,
                    greedy=True,
                    exclude_nodes=self.state.dead_nodes(),
                    unavailable=unavailable,
                )
            except ValueError:
                blocked.append(job)
                continue
            graph, transfer_bytes, recycle = self._repair_graph(
                request, path, stripe, target, repair=True
            )
            self.metrics.record_repair_traffic(transfer_bytes)
            self._active_repairs += 1
            self._inflight.add(sid)
            self.sim.submit(
                graph,
                now,
                on_complete=partial(self._repair_done, job, now, target),
                recycle=recycle,
            )
        for job in blocked:
            self.queue.push(job)
        if blocked:
            self.metrics.record_queue_depth(now, self.queue.depth())

    def _repair_graph(self, request, path, stripe, requestor: str, repair: bool):
        """Compile (or template-instantiate) one repair/degraded-read graph.

        Returns ``(graph, transfer_bytes, recycle)``.  The template cache is
        keyed by the node-coincidence pattern of the operation's role vector
        (ordered helper nodes, then the requestor); in the runtime every
        scheme's helper order equals the coordinator's sorted path, so the
        role binding is exact and repeated patterns skip the planner and
        scheme compile entirely.
        """
        # Templates are only sound when the scheme will build over exactly
        # the ordered path -- which holds whenever the (memoized) plan's
        # helper set is the path itself.  Solver fallbacks that drop a
        # zero-coefficient helper (LRC global repairs) build a smaller graph
        # than the path suggests; those ops bypass the cache and compile
        # directly.
        if not self.use_templates or stripe.code.repair_plan(
            request.failed, path
        ).helpers != tuple(path):
            graph = self.scheme.build_graph(request, self.cluster, candidates=path)
            if repair:
                self.throttle.apply(graph)
            return graph, graph.total_bytes("transfer"), None
        roles = tuple(stripe.location(i) for i in path) + (requestor,)
        key = (repair, role_pattern(roles))
        templates = self._graph_templates
        template = templates.get(key)
        if template is not None:
            self._graph_template_hits += 1
            return template.instantiate(roles), template.transfer_bytes, template.release
        self._graph_template_misses += 1
        graph = self.scheme.build_graph(request, self.cluster, candidates=path)
        if repair:
            self.throttle.apply(graph)
        if key not in templates:
            template = RebindableGraphTemplate.capture(
                graph, roles, self._port_resolver
            )
            templates[key] = template
            if template is not None:
                return graph, template.transfer_bytes, template.release
        return graph, graph.total_bytes("transfer"), None

    def _requeue(self, job: RepairJob, now: float) -> None:
        self.queue.push(job)
        self.metrics.record_queue_depth(now, self.queue.depth())

    def _repair_done(
        self, job: RepairJob, dispatch_time: float, target: str, finish_time: float
    ) -> None:
        sid = job.stripe_id
        self._active_repairs -= 1
        self._inflight.discard(sid)
        if not self.state.is_lost(sid):
            if self.state.is_node_alive(target):
                if self.state.heal_block(sid, job.block_index):
                    self.coordinator.relocate_block(sid, job.block_index, target)
                    self.metrics.record_repair(
                        job.failed_time, dispatch_time, finish_time
                    )
            else:
                # The replacement died while the repair was in flight; the
                # reconstructed block is gone with it -- repair again.
                self._requeue(
                    RepairJob(
                        sid,
                        job.block_index,
                        job.failed_time,
                        finish_time,
                        risk=self.state.failed_count(sid),
                    ),
                    finish_time,
                )
        for deferred in self._deferred.pop(sid, []):
            # Parked jobs were invisible to reprioritise while the sibling
            # repair ran; refresh their risk before they re-enter the queue.
            deferred.risk = max(deferred.risk, self.state.failed_count(sid))
            self._requeue(deferred, finish_time)
        self._dispatch(finish_time)

    # ------------------------------------------------------------ foreground
    def _handle_op(self, op: ForegroundOp, now: float) -> None:
        stripe = self.stripes[op.stripe_pos]
        sid = stripe.stripe_id
        block = op.block_index % stripe.code.n
        state = self.state
        if state.is_lost(sid):
            self.metrics.record_failed_read()
            return
        client = op.client
        if not state.is_node_alive(client):
            live = state.live_nodes()
            if not live:
                self.metrics.record_failed_read()
                return
            client = live[0]
        source = stripe.block_locations[block]
        if state.is_block_available(sid, block) and state.is_node_alive(source):
            if not self.use_templates:
                graph = build_read_graph(
                    self.cluster,
                    source,
                    client,
                    self.config.read_size,
                    name=f"fg{next(self._op_seq)}",
                )
                recycle = None
            else:
                template = self._read_templates.get((source, client))
                if template is None:
                    graph = build_read_graph(
                        self.cluster,
                        source,
                        client,
                        self.config.read_size,
                        name=f"fg{next(self._op_seq)}",
                    )
                    template = GraphTemplate(graph)
                    self._read_templates.put((source, client), template)
                else:
                    graph = template.instantiate()
                recycle = template.release
            self.sim.submit(
                graph,
                now,
                on_complete=partial(self._read_done, now, False),
                recycle=recycle,
            )
            return
        # Degraded read: reconstruct the requested block at the client
        # through the configured repair scheme.
        unavailable = [i for i in self.state.failed_blocks(sid) if i != block]
        read_size = self.config.read_size
        try:
            request, path = self.coordinator.plan_repair(
                sid,
                [block],
                [client],
                read_size,
                min(self.config.slice_size, read_size),
                greedy=True,
                exclude_nodes=self.state.dead_nodes(),
                unavailable=unavailable,
            )
        except ValueError:
            self.metrics.record_failed_read()
            return
        graph, _, recycle = self._repair_graph(
            request, path, stripe, client, repair=False
        )
        self.sim.submit(
            graph,
            now,
            on_complete=partial(self._read_done, now, True),
            recycle=recycle,
        )

    def _read_done(self, issue_time: float, degraded: bool, finish_time: float) -> None:
        self.metrics.record_read(finish_time - issue_time, degraded)
