"""Failure injection.

Field studies cited by the paper (section 2.3) report that over 90% of
failure events are transient -- the block is temporarily unavailable and is
served through a degraded read -- while the remainder are permanent node
failures that trigger full-node recovery.  :class:`FailureGenerator` draws a
failure trace with that mix so that end-to-end examples and tests can
exercise both repair paths in realistic proportions.

The generator is deterministic given a seed, and accepts an explicit
``random.Random`` instance so a driver (e.g. the continuous cluster runtime
of :mod:`repro.runtime`) can derive every stochastic component -- failures,
foreground traffic, replacement placement -- from one master seed and replay
a whole multi-day trace bit-for-bit.

Two failure models are provided:

* :class:`FailureGenerator` -- independent arrivals: one Poisson process
  whose events are transient block outages with probability
  ``transient_fraction`` and permanent node failures otherwise.
* :class:`RackBurstFailureGenerator` -- correlated arrivals: the transient
  stream is unchanged, but permanent failures arrive as *rack bursts* (a
  switch or PDU takes several nodes of one rack down within a short window),
  the correlated failure mode field studies blame for most multi-failure
  stripes.  This is a scenario axis of the experiment engine
  (:mod:`repro.exp`): same long-run failure volume, very different stripe
  risk profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.request import StripeInfo


@dataclass(frozen=True)
class FailureEvent:
    """One failure event of a trace.

    Attributes
    ----------
    time:
        Event time in seconds since the start of the trace.
    kind:
        ``"transient"`` (degraded read of one block) or ``"node"`` (permanent
        node failure requiring full-node recovery).
    node:
        The affected node.
    stripe_id, block_index:
        The affected block for transient failures; ``None`` for node
        failures (every block of the node is affected).
    duration:
        For transient failures generated with a ``transient_duration_mean``,
        the seconds until the block becomes readable again; ``None``
        otherwise (and always ``None`` for permanent node failures, whose
        data never comes back).
    """

    time: float
    kind: str
    node: str
    stripe_id: Optional[int] = None
    block_index: Optional[int] = None
    duration: Optional[float] = None


class FailureGenerator:
    """Generates randomised failure traces over a set of stripes.

    Parameters
    ----------
    stripes:
        The stripes failures are drawn from.
    transient_fraction:
        Fraction of events that are transient block failures (0.9 by
        default, following the field data cited in section 2.3).
    mean_interarrival:
        Mean seconds between failure events (exponentially distributed).
    seed:
        Seed for reproducibility; ignored when ``rng`` is given.
    rng:
        An explicit ``random.Random`` to draw from.  Passing a shared
        generator lets a driver derive its whole stochastic world from one
        master seed.
    transient_duration_mean:
        When set, every transient event carries an exponentially distributed
        ``duration`` (mean seconds of unavailability); when ``None`` (the
        default) durations are not sampled and ``FailureEvent.duration``
        stays ``None``, preserving the single-shot experiments' behaviour.
    """

    def __init__(
        self,
        stripes: Sequence[StripeInfo],
        transient_fraction: float = 0.9,
        mean_interarrival: float = 60.0,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        transient_duration_mean: Optional[float] = None,
    ) -> None:
        if not stripes:
            raise ValueError("at least one stripe is required")
        if not 0.0 <= transient_fraction <= 1.0:
            raise ValueError("transient_fraction must be within [0, 1]")
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if transient_duration_mean is not None and transient_duration_mean <= 0:
            raise ValueError("transient_duration_mean must be positive when set")
        self._stripes = list(stripes)
        self._transient_fraction = transient_fraction
        self._mean_interarrival = mean_interarrival
        self._transient_duration_mean = transient_duration_mean
        self._rng = rng if rng is not None else random.Random(seed)

    def _nodes(self) -> List[str]:
        nodes = set()
        for stripe in self._stripes:
            nodes.update(stripe.block_locations.values())
        return sorted(nodes)

    def _next_event(self, clock: float, nodes: Sequence[str]) -> FailureEvent:
        if self._rng.random() < self._transient_fraction:
            stripe = self._rng.choice(self._stripes)
            block_index = self._rng.randrange(stripe.code.n)
            duration = None
            if self._transient_duration_mean is not None:
                duration = self._rng.expovariate(1.0 / self._transient_duration_mean)
            return FailureEvent(
                time=clock,
                kind="transient",
                node=stripe.location(block_index),
                stripe_id=stripe.stripe_id,
                block_index=block_index,
                duration=duration,
            )
        return FailureEvent(time=clock, kind="node", node=self._rng.choice(nodes))

    def generate(self, num_events: int) -> List[FailureEvent]:
        """Generate a trace of ``num_events`` failure events."""
        if num_events <= 0:
            raise ValueError("num_events must be positive")
        nodes = self._nodes()
        events: List[FailureEvent] = []
        clock = 0.0
        for _ in range(num_events):
            clock += self._rng.expovariate(1.0 / self._mean_interarrival)
            events.append(self._next_event(clock, nodes))
        return events

    def generate_until(self, horizon_seconds: float) -> List[FailureEvent]:
        """Generate every failure event arriving before ``horizon_seconds``.

        This is the entry point of the continuous runtime, which needs a
        trace spanning a fixed window of simulated wall-clock time (days to
        months) rather than a fixed event count.
        """
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        nodes = self._nodes()
        events: List[FailureEvent] = []
        clock = self._rng.expovariate(1.0 / self._mean_interarrival)
        while clock < horizon_seconds:
            events.append(self._next_event(clock, nodes))
            clock += self._rng.expovariate(1.0 / self._mean_interarrival)
        return events


class RackBurstFailureGenerator:
    """Correlated failure traces: transient outages plus rack-burst node kills.

    The transient stream matches :class:`FailureGenerator` (Poisson, one
    block per event, optional exponential outage durations).  Permanent
    failures, however, arrive in *bursts*: at exponentially distributed
    intervals a rack is chosen uniformly, a geometrically distributed number
    of its nodes (mean ``burst_size_mean``, capped at the rack size) fail,
    and the individual node failures land at uniformly random offsets within
    ``burst_span_seconds`` of the burst start -- the signature of a
    top-of-rack switch or PDU event.

    Parameters
    ----------
    stripes:
        The stripes transient failures are drawn from.
    racks:
        Failure domains as groups of node names; every burst stays inside
        one group.
    transient_mean_interarrival:
        Mean seconds between transient block outages.
    burst_mean_interarrival:
        Mean seconds between burst arrivals.
    burst_size_mean:
        Mean nodes failed per burst (geometric; at least one, at most the
        rack size).
    burst_span_seconds:
        Window over which one burst's node failures are spread.
    seed, rng:
        As for :class:`FailureGenerator`.
    transient_duration_mean:
        As for :class:`FailureGenerator`.
    """

    def __init__(
        self,
        stripes: Sequence[StripeInfo],
        racks: Sequence[Sequence[str]],
        transient_mean_interarrival: float = 60.0,
        burst_mean_interarrival: float = 6 * 3600.0,
        burst_size_mean: float = 2.0,
        burst_span_seconds: float = 300.0,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        transient_duration_mean: Optional[float] = None,
    ) -> None:
        if not stripes:
            raise ValueError("at least one stripe is required")
        rack_groups: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(group) for group in racks
        )
        if not rack_groups or any(not group for group in rack_groups):
            raise ValueError("racks must be non-empty groups of node names")
        if transient_mean_interarrival <= 0 or burst_mean_interarrival <= 0:
            raise ValueError("interarrival means must be positive")
        if burst_size_mean < 1.0:
            raise ValueError("burst_size_mean must be at least 1")
        if burst_span_seconds < 0:
            raise ValueError("burst_span_seconds must be non-negative")
        if transient_duration_mean is not None and transient_duration_mean <= 0:
            raise ValueError("transient_duration_mean must be positive when set")
        self._stripes = list(stripes)
        self._racks = rack_groups
        self._transient_mean = transient_mean_interarrival
        self._burst_mean = burst_mean_interarrival
        self._burst_size_mean = burst_size_mean
        self._burst_span = burst_span_seconds
        self._transient_duration_mean = transient_duration_mean
        self._rng = rng if rng is not None else random.Random(seed)

    def _burst_size(self, rack_size: int) -> int:
        """Geometric burst size with mean ``burst_size_mean``, capped."""
        continue_probability = 1.0 - 1.0 / self._burst_size_mean
        size = 1
        while size < rack_size and self._rng.random() < continue_probability:
            size += 1
        return size

    def _transient_events(self, horizon_seconds: float) -> List[FailureEvent]:
        # Delegate to the independent generator with a transient-only mix,
        # so the two failure models can never drift apart in how transient
        # events are constructed.
        return FailureGenerator(
            self._stripes,
            transient_fraction=1.0,
            mean_interarrival=self._transient_mean,
            rng=self._rng,
            transient_duration_mean=self._transient_duration_mean,
        ).generate_until(horizon_seconds)

    def _burst_events(self, horizon_seconds: float) -> List[FailureEvent]:
        events: List[FailureEvent] = []
        clock = self._rng.expovariate(1.0 / self._burst_mean)
        while clock < horizon_seconds:
            rack = self._racks[self._rng.randrange(len(self._racks))]
            size = self._burst_size(len(rack))
            victims = self._rng.sample(list(rack), size)
            for node in victims:
                offset = (
                    self._rng.uniform(0.0, self._burst_span)
                    if self._burst_span > 0
                    else 0.0
                )
                events.append(
                    FailureEvent(time=clock + offset, kind="node", node=node)
                )
            clock += self._rng.expovariate(1.0 / self._burst_mean)
        return events

    def generate_until(self, horizon_seconds: float) -> List[FailureEvent]:
        """Every failure event arriving before ``horizon_seconds``.

        The merged trace is time-sorted with a stable tie-break (transient
        stream first, then bursts in generation order), so a given rng state
        always yields the identical event sequence.
        """
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        events = self._transient_events(horizon_seconds)
        events.extend(
            e for e in self._burst_events(horizon_seconds) if e.time < horizon_seconds
        )
        events.sort(key=lambda event: event.time)
        return events
