#!/usr/bin/env python3
"""Degraded reads in a geo-distributed deployment (section 6.2 of the paper).

Stripes a (16, 12) RS-coded object across the four North-America EC2 regions
of Table 1 and issues a degraded read from a client in each region.  For each
requestor location the example compares:

* PPR,
* repair pipelining over a random helper path, and
* repair pipelining with the optimal weighted path of Algorithm 2 (which
  uses the measured pairwise bandwidths as link weights).

Run with::

    python examples/degraded_read_geo.py
"""

from repro.cluster import KiB, MiB
from repro.codes import RSCode
from repro.core import PPRRepair, RepairPipelining, RepairRequest, StripeInfo
from repro.core.paths import RandomPathSelector, WeightedPathSelector
from repro.sim import Simulator
from repro.workloads import build_ec2_cluster
from repro.workloads.ec2 import regions

BLOCK_SIZE = 64 * MiB
SLICE_SIZE = 32 * KiB


def build_geo_stripe(cluster_name):
    """Spread a (16, 12) stripe over four regions, four blocks per region."""
    code = RSCode(16, 12)
    locations = {}
    for region_index, region in enumerate(regions(cluster_name)):
        for i in range(4):
            locations[region_index * 4 + i] = f"{region}-{i}"
    return StripeInfo(code, locations)


def repair_from(cluster, stripe, requestor):
    """Repair block 0 at the given requestor under the three strategies."""
    request = RepairRequest(stripe, [0], requestor, BLOCK_SIZE, SLICE_SIZE)
    # helpers co-located with the requestor instance are excluded so every
    # transfer crosses the network, as in the paper's methodology
    candidates = [
        i for i in request.available_blocks() if stripe.location(i) != requestor
    ]

    ppr = PPRRepair().repair_time(request, cluster).makespan
    random_graph = RepairPipelining(
        "rp", path_selector=RandomPathSelector(seed=42)
    ).build_graph(request, cluster, candidates=candidates)
    random_time = Simulator(random_graph).run().makespan
    optimal_graph = RepairPipelining(
        "rp", path_selector=WeightedPathSelector()
    ).build_graph(request, cluster, candidates=candidates)
    optimal_time = Simulator(optimal_graph).run().makespan
    return ppr, random_time, optimal_time


def main():
    cluster_name = "north_america"
    cluster = build_ec2_cluster(cluster_name)
    stripe = build_geo_stripe(cluster_name)

    print(f"degraded read of one 64 MiB block, (16,12) RS, EC2 {cluster_name}:")
    print(f"{'requestor region':18s} {'PPR':>8s} {'RP':>8s} {'RP+optimal':>11s}")
    for region in regions(cluster_name):
        requestor = f"{region}-3"
        ppr, rp, optimal = repair_from(cluster, stripe, requestor)
        print(f"{region:18s} {ppr:8.1f} {rp:8.1f} {optimal:11.1f}")
    print("\nrepair pipelining beats PPR everywhere; weighted path selection")
    print("(Algorithm 2) routes around the slow cross-region links for a further cut.")


if __name__ == "__main__":
    main()
