"""Property tests for the repair-scheme timing invariants.

The paper's headline claim (section 3) is that repair pipelining never does
worse than conventional repair and approaches single-block read time as the
slice count grows.  These properties are pinned across *randomised*
``(n, k, slice)`` configurations rather than the few fixed geometries of
the figure benchmarks, so a regression in the pipeline compiler or the
simulator's port model cannot hide in an untested corner.

The slice size is kept at or below half the block (at ``slice == block`` the
"pipeline" degenerates to a relay chain whose per-transfer overheads can
exceed conventional repair's by a hair -- the paper never operates there).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_flat_cluster
from repro.codes import RSCode
from repro.core import ConventionalRepair, PPRRepair, RepairPipelining, RepairRequest, StripeInfo

KiB = 1024


def _random_request(seed, max_n=16):
    """A single-block repair on a random (n, k, slice) configuration."""
    rng = random.Random(seed)
    n = rng.randint(4, max_n)
    k = rng.randint(2, n - 1)
    block_size = rng.choice([128 * KiB, 256 * KiB, 1024 * KiB])
    slice_divisor = rng.choice([2, 4, 8, 16, 32, 64])
    cluster = build_flat_cluster(n + 1)
    stripe = StripeInfo(RSCode(n, k), {i: f"node{i}" for i in range(n)})
    request = RepairRequest(
        stripe,
        [rng.randrange(n)],
        f"node{n}",
        block_size,
        block_size // slice_divisor,
    )
    return cluster, request


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_pipelining_never_slower_than_conventional(seed):
    """rp makespan <= conventional makespan for any (n, k, slice)."""
    cluster, request = _random_request(seed)
    conventional = ConventionalRepair().repair_time(request, cluster).makespan
    pipelined = RepairPipelining("rp").repair_time(request, cluster).makespan
    assert pipelined <= conventional


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_ppr_between_pipelining_and_conventional(seed):
    """rp <= PPR <= conventional in the schemes' operating regime.

    The ordering needs k >= 3 (at k=2 PPR degenerates to conventional plus
    round overhead) and a slice count comfortably above k (with only 2-4
    slices, pipelining's ~k/s timeslot advantage collapses below PPR's
    log2(k) rounds) -- both paper-regime conditions, where s is in the
    thousands.
    """
    rng = random.Random(seed)
    n = rng.randint(4, 16)
    k = rng.randint(3, n - 1)
    block_size = rng.choice([128 * KiB, 256 * KiB, 1024 * KiB])
    slice_divisor = rng.choice([16, 32, 64])
    cluster = build_flat_cluster(n + 1)
    stripe = StripeInfo(RSCode(n, k), {i: f"node{i}" for i in range(n)})
    request = RepairRequest(
        stripe,
        [rng.randrange(n)],
        f"node{n}",
        block_size,
        block_size // slice_divisor,
    )
    conventional = ConventionalRepair().repair_time(request, cluster).makespan
    ppr = PPRRepair().repair_time(request, cluster).makespan
    pipelined = RepairPipelining("rp").repair_time(request, cluster).makespan
    assert ppr <= conventional
    assert pipelined <= ppr


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_smaller_slices_never_hurt_pipelining(seed):
    """Halving the slice size never increases the pipelined makespan."""
    rng = random.Random(seed)
    n = rng.randint(4, 14)
    k = rng.randint(2, n - 1)
    block_size = 1024 * KiB
    cluster = build_flat_cluster(n + 1)
    stripe = StripeInfo(RSCode(n, k), {i: f"node{i}" for i in range(n)})
    failed = rng.randrange(n)
    previous = None
    for divisor in (2, 4, 8, 16, 32):
        request = RepairRequest(
            stripe, [failed], f"node{n}", block_size, block_size // divisor
        )
        makespan = RepairPipelining("rp").repair_time(request, cluster).makespan
        if previous is not None:
            assert makespan <= previous * (1 + 1e-9)
        previous = makespan
