#!/usr/bin/env python3
"""Full-node recovery with greedy helper scheduling (section 3.3).

Writes many stripes across a 16-node cluster through the HDFS-3 facade,
fails one DataNode, and recovers every lost block two ways:

1. through the byte-level ECPipe data plane (proving the recovered bytes are
   exact), and
2. through the timing planners, comparing the recovery rate of the original
   HDFS-3 repair path, conventional repair under ECPipe, and repair
   pipelining with and without greedy least-recently-selected helper
   scheduling, across several requestor counts (Figure 8(e) / 10(b)).

Run with::

    python examples/full_node_recovery.py
"""

import os

from repro.cluster import KiB, MiB, build_flat_cluster, to_mib_per_sec
from repro.codes import RSCode
from repro.core import ConventionalRepair, FullNodeRecovery, RepairPipelining
from repro.storage import HDFS3
from repro.workloads import random_stripes

NODES = [f"node{i}" for i in range(16)]
NUM_STRIPES = 16
DATA_BLOCK_SIZE = 16 * KiB   # byte-level payloads (kept small for speed)
SIM_BLOCK_SIZE = 8 * MiB     # simulated block size for the timing study
SIM_SLICE_SIZE = 1 * MiB


def byte_level_recovery():
    """Fail a DataNode of an HDFS-3 deployment and verify the recovery."""
    system = HDFS3(NODES, code=RSCode(9, 6), block_size=DATA_BLOCK_SIZE)
    original = {}
    for i in range(4):
        payload = os.urandom(DATA_BLOCK_SIZE * 6)
        system.write_file(f"file-{i}", payload)
        original[f"file-{i}"] = payload

    victim = system.metadata.stripe(0).location(0)
    lost = system.fail_node(victim)
    print(f"byte-level recovery: DataNode {victim} failed, {len(lost)} blocks lost")

    recovered = system.ecpipe.recover_node(
        victim, ["node14", "node15"], slice_size=4 * KiB
    )
    for (stripe_id, block_index), payload in recovered.items():
        stripe = system.metadata.stripe(stripe_id)
        expected = system.code.encode(
            [
                original[f"file-{stripe_id}"][i * DATA_BLOCK_SIZE:(i + 1) * DATA_BLOCK_SIZE]
                for i in range(6)
            ]
        )[block_index].tobytes()
        assert payload == expected
        system.ecpipe.restore_block(stripe_id, block_index, payload)
        system.metadata.mark_repaired(stripe_id, block_index)
    print(f"  all {len(recovered)} blocks reconstructed bit-exactly and written back\n")


def recovery_rate_study():
    """Compare recovery rates of the repair strategies (simulated timing)."""
    cluster = build_flat_cluster(17)
    code = RSCode(14, 10)
    stripes = random_stripes(code, NODES, NUM_STRIPES, seed=7, pin_node="node0")
    system = HDFS3(NODES, code=code)

    strategies = {
        "hdfs-3 original repair": FullNodeRecovery(system.original_repair_scheme(), False),
        "ecpipe conventional": FullNodeRecovery(ConventionalRepair(), False),
        "ecpipe rp": FullNodeRecovery(RepairPipelining("rp"), False),
        "ecpipe rp + scheduling": FullNodeRecovery(RepairPipelining("rp"), True),
    }
    print("full-node recovery rate (MiB/s), 16 stripes of 8 MiB blocks:")
    print(f"{'requestors':>10s}  " + "  ".join(f"{name:>22s}" for name in strategies))
    for count in (1, 4, 8):
        requestors = [f"node{i}" for i in range(1, count + 1)]
        rates = []
        for recovery in strategies.values():
            result = recovery.run(
                stripes, "node0", requestors, SIM_BLOCK_SIZE, SIM_SLICE_SIZE, cluster
            )
            rates.append(to_mib_per_sec(result.recovery_rate))
        print(f"{count:>10d}  " + "  ".join(f"{rate:>22.1f}" for rate in rates))
    print("\nrepair pipelining multiplies the recovery rate; greedy scheduling adds")
    print("a further gain once many requestors pull repairs concurrently.")


def main():
    byte_level_recovery()
    recovery_rate_study()


if __name__ == "__main__":
    main()
