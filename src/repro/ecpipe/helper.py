"""ECPipe helper daemon.

A helper runs next to every storage node.  It reads the locally stored
blocks directly from the native file system (bypassing the distributed
storage system's read routine), computes partial slices -- the ``a_i B_i``
terms of the repair linear combination -- and hands slices to the next hop
through the receiver's slice store.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.ecpipe.slicestore import SliceStore
from repro.gf.gf256 import gf_mul_bytes, gf_mulsum_bytes


class Helper:
    """A per-node helper daemon holding that node's blocks.

    Parameters
    ----------
    node:
        Name of the storage node this helper is co-located with.
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self.store = SliceStore(owner=node)
        self._blocks: Dict[str, bytes] = {}
        #: Number of native-file-system whole-block reads performed.
        self.blocks_read = 0
        #: Total bytes read from locally stored blocks (whole blocks or slices).
        self.bytes_read = 0
        #: Total bytes pushed to other helpers or requestors.
        self.bytes_sent = 0

    # -------------------------------------------------------------- storage
    def store_block(self, key: str, data: bytes) -> None:
        """Persist a block locally (the native-file-system file)."""
        self._blocks[key] = bytes(data)

    def has_block(self, key: str) -> bool:
        """True if the helper's node stores the block."""
        return key in self._blocks

    def delete_block(self, key: str) -> None:
        """Drop a block (used to inject block loss)."""
        self._blocks.pop(key, None)

    def read_block(self, key: str) -> bytes:
        """Read a whole block from the local file system."""
        if key not in self._blocks:
            raise KeyError(f"helper {self.node!r} does not store block {key!r}")
        self.blocks_read += 1
        self.bytes_read += len(self._blocks[key])
        return self._blocks[key]

    def read_slice(self, key: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes of a block starting at ``offset``."""
        if key not in self._blocks:
            raise KeyError(f"helper {self.node!r} does not store block {key!r}")
        block = self._blocks[key]
        if offset < 0 or offset + length > len(block):
            raise ValueError(
                f"slice [{offset}, {offset + length}) outside block of {len(block)} bytes"
            )
        self.bytes_read += length
        return block[offset:offset + length]

    def block_keys(self):
        """Keys of all locally stored blocks."""
        return list(self._blocks)

    def store_bytes(self) -> int:
        """Total bytes of all locally stored blocks."""
        return sum(len(block) for block in self._blocks.values())

    # ------------------------------------------------------------ computing
    @staticmethod
    def scale_slice(coefficient: int, data: bytes) -> bytes:
        """Compute ``coefficient * data`` over GF(2^8)."""
        return gf_mul_bytes(coefficient, data).tobytes()

    @staticmethod
    def combine(partial: Optional[bytes], coefficient: int, data: bytes) -> bytes:
        """Add ``coefficient * data`` to an incoming partial slice.

        ``partial`` may be ``None`` for the first helper of a path.
        """
        if partial is None:
            return gf_mul_bytes(coefficient, data).tobytes()
        if len(partial) != len(data):
            raise ValueError("partial slice and local slice differ in length")
        return gf_mulsum_bytes([1, coefficient], [partial, data]).tobytes()

    # ------------------------------------------------------------ messaging
    def push(self, target: Union["Helper", "RequestorLike"], key: str, data: bytes) -> None:
        """Deliver a slice to another helper's or a requestor's slice store."""
        target.store.put(key, data)
        self.bytes_sent += len(data)


class RequestorLike:
    """Structural interface for push targets (anything with a slice store)."""

    store: SliceStore
