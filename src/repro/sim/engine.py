"""Discrete-event executor for task graphs.

The simulator executes a :class:`repro.sim.tasks.TaskGraph` against the FIFO
ports of :mod:`repro.sim.resources`:

1. a task becomes *ready* when all of its dependencies have completed;
2. a ready task starts as soon as every port it uses is idle; tasks blocked
   on a busy port queue on it and are retried, in FIFO order, when the port
   frees;
3. once started, the task occupies each of its ports for that port's own
   service time (``size / rate + overhead``); the task itself completes when
   its slowest port has served it, at which point its dependents may become
   ready.

Releasing each port after its own service time (rather than after the whole
task) is what lets several transfers that are individually bottlenecked by a
slow link share a fast port concurrently -- the behaviour of a real NIC
receiving from many throttled senders (section 4.1 of the paper) -- while a
genuinely congested port still serves its backlog one transfer at a time,
exactly as in the paper's timeslot analysis (sections 2.2 and 3.2).

Hot-path implementation notes
-----------------------------
The event loop is written for throughput:

* **Virtual releases.**  The original engine pushed one heap event per port
  hold just to flip a busy flag; almost all of those events found no waiter.
  Ports now record ``busy_until`` plus the heap key their release event
  *would* have had (a sequence number is still reserved per hold, so
  same-instant ties break exactly as an explicit release event would), and
  a release-*scan* event is scheduled only while the port actually has
  waiters.  Busyness at the current event is decided by comparing
  ``(busy_until, release_key)`` against the event's own ``(time, key)``,
  preserving the releases-before-completions-before-arrivals ordering.
* **Bounded waiter queues.**  Waiter queues live on the ports themselves
  (no ``id()`` dictionaries), a task is enqueued at most once per port, and
  a starting task eagerly removes its remaining queue entries.  This is the
  engine's one *intentional* scheduling change relative to the original
  implementation (see README, "Performance"): the old lazy pruning let a
  task blocked on several busy ports hold multiple queue positions, giving
  it extra out-of-FIFO-turn retries and multiplying entries exponentially
  under contention.  Queues are now strictly FIFO with one position per
  task per port; task/byte counts are unchanged, while contended-trace
  start times can shift slightly versus pre-overhaul schedules.
* **Inline arrivals and pooled submissions.**  A batch submitted at the
  current instant with no pending same-time events is admitted without a
  heap round-trip, and graphs marked ``prebound`` by the template layer
  (:mod:`repro.core.templates`) skip per-task re-initialisation and cycle
  validation.

Within the *current* engine, everything above is schedule-exact: the golden
replay suite (``tests/test_runtime_golden.py``) pins fixed-seed traces
byte-for-byte across the caching/template/metrics layers built on top.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional

from repro.sim.resources import Port
from repro.sim.tasks import Task, TaskGraph

#: Event-kind bases folded into the heap key (``key = base + seq``): port
#: release scans are processed before task completions at the same instant so
#: a dependent task sees the freshest port state, and newly arriving batches
#: are admitted last so they queue behind work that became runnable at the
#: same instant.  Sequence numbers stay far below 2**52, so the key encodes
#: (kind, seq) in one integer comparison.
_RELEASE_BASE = 0
_COMPLETE_BASE = 1 << 52
_ARRIVE_BASE = 2 << 52


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    makespan:
        Completion time of the last task (seconds) -- the repair time.
    num_tasks:
        Number of tasks executed.
    bytes_by_kind:
        Total bytes processed per task kind (e.g. ``"transfer"`` gives the
        repair traffic).
    port_busy_seconds:
        Seconds of service performed by each port, keyed by port name, for
        utilisation and load-balance analysis (section 2.3 of the paper).
    """

    makespan: float
    num_tasks: int
    bytes_by_kind: Dict[str, float] = field(default_factory=dict)
    port_busy_seconds: Dict[str, float] = field(default_factory=dict)

    def transfer_bytes(self) -> float:
        """Total bytes moved over the network (repair traffic)."""
        return self.bytes_by_kind.get("transfer", 0.0)

    def port_utilisation(self, port_name: str) -> float:
        """Fraction of the makespan a port spent serving work."""
        if self.makespan <= 0:
            return 0.0
        return min(1.0, self.port_busy_seconds.get(port_name, 0.0) / self.makespan)

    def max_port_busy_seconds(self) -> float:
        """Service time of the most loaded port (the bottleneck link)."""
        if not self.port_busy_seconds:
            return 0.0
        return max(self.port_busy_seconds.values())


class Simulator:
    """Executes a task graph and reports its makespan.

    Parameters
    ----------
    graph:
        The task graph to execute.  The graph is validated to be acyclic.
    trace:
        If true, a chronological list of started tasks is kept on
        :attr:`trace` for debugging and tests (per-task start/finish times
        are always recorded on the task objects).
    """

    def __init__(self, graph: TaskGraph, trace: bool = False) -> None:
        graph.validate_acyclic()
        self._graph = graph
        self._trace_enabled = trace
        self.trace: List[Task] = []

    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the result.

        This is a closed-world wrapper around :class:`DynamicSimulator`:
        ports are reset, the one graph is submitted at time zero, and the
        event loop drains -- so single-shot experiments and the continuous
        runtime share the exact same port-contention semantics.
        """
        tasks = self._graph.tasks
        for port in self._graph.ports():
            port.reset()
        self.trace = []

        engine = DynamicSimulator()
        if self._trace_enabled:
            engine.on_task_start = self.trace.append
        engine.submit(self._graph)
        try:
            clock = engine.drain()
        except RuntimeError:
            unfinished = [t.name for t in tasks if t.finish_time is None]
            raise RuntimeError(
                f"simulation deadlocked: {len(unfinished)} tasks never ran "
                f"(e.g. {unfinished[:5]})"
            ) from None

        bytes_by_kind: Dict[str, float] = {}
        for task in tasks:
            bytes_by_kind[task.kind] = bytes_by_kind.get(task.kind, 0.0) + task.size_bytes
        port_busy = {p.name: p.busy_seconds for p in self._graph.ports()}
        return SimulationResult(
            makespan=clock,
            num_tasks=len(tasks),
            bytes_by_kind=bytes_by_kind,
            port_busy_seconds=port_busy,
        )


class _Batch:
    """One task graph submitted to a :class:`DynamicSimulator`."""

    __slots__ = (
        "batch_id",
        "tasks",
        "remaining",
        "on_complete",
        "submit_time",
        "finish_time",
        "graph",
        "recycle",
    )

    def __init__(
        self,
        batch_id: int,
        tasks: List[Task],
        on_complete: Optional[Callable[[float], None]],
        submit_time: float,
    ) -> None:
        self.batch_id = batch_id
        self.tasks = tasks
        self.remaining = len(tasks)
        self.on_complete = on_complete
        self.submit_time = submit_time
        self.finish_time: Optional[float] = None
        self.graph: Optional[TaskGraph] = None
        self.recycle: Optional[Callable[[TaskGraph], None]] = None


class DynamicSimulator:
    """Open-ended discrete-event executor for task graphs arriving over time.

    Where :class:`Simulator` runs one closed task graph to completion, the
    dynamic simulator keeps a single event loop and FIFO port state alive
    across many graphs submitted at different simulated times.  This is what
    the continuous cluster runtime (:mod:`repro.runtime`) builds on: repair
    graphs and foreground read graphs are submitted as *batches* against the
    same cluster ports, so background repair traffic genuinely queues behind
    (and delays) foreground traffic on shared NICs and disks.

    Rules inherited from :class:`Simulator`: a task starts when its
    dependencies have completed and every port it uses is idle; blocked tasks
    wait FIFO on busy ports; each port is released after its own service
    time.  Additional rules:

    * a batch's dependency-free tasks become ready at the batch's submission
      time, not at time zero;
    * port statistics (``busy_seconds``, ``busy_bytes``) accumulate across
      the whole run and are never reset by a submission;
    * each task object may be submitted once; build a fresh graph per batch
      (or let the template layer pool completed graphs for reuse).

    Event ordering is deterministic (ties broken by submission order), so two
    runs fed identical batches at identical times produce identical traces.
    """

    def __init__(self) -> None:
        self._events: List[tuple] = []
        self._seq = 0
        self._clock = 0.0
        self._batches: Dict[int, _Batch] = {}
        self._batch_ids = itertools.count()
        self._tasks_completed = 0
        #: Optional hook called with each task as it starts (used by
        #: :class:`Simulator` for tracing).
        self.on_task_start: Optional[Callable[[Task], None]] = None

    # -------------------------------------------------------------- inspection
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock

    @property
    def pending_batches(self) -> int:
        """Number of submitted batches that have not yet completed."""
        return len(self._batches)

    @property
    def tasks_completed(self) -> int:
        """Total number of tasks completed since construction."""
        return self._tasks_completed

    # -------------------------------------------------------------- submission
    def submit(
        self,
        graph: TaskGraph,
        time: Optional[float] = None,
        on_complete: Optional[Callable[[float], None]] = None,
        recycle: Optional[Callable[[TaskGraph], None]] = None,
    ) -> int:
        """Schedule a task graph to start at ``time`` (default: now).

        ``on_complete`` is called with the completion time once every task of
        the graph has finished; it may submit further graphs (at or after the
        completion time), which is how the runtime chains repairs off the
        repair queue.  ``recycle``, if given, is called with the graph once
        the batch completes, *before* ``on_complete`` -- the template layer
        uses it to return pooled graphs for reuse.  Returns the batch id.
        """
        when = self._clock if time is None else float(time)
        if when < self._clock:
            raise ValueError(
                f"cannot submit a batch at {when} before current time {self._clock}"
            )
        if graph.prebound:
            # Template-instantiated graph: tasks are freshly initialised and
            # the template's structure was validated when first built.
            graph.prebound = False
            tasks = graph._tasks
        else:
            graph.validate_acyclic()
            tasks = graph.tasks
            for task in tasks:
                if task.batch is not None:
                    raise ValueError(
                        f"task {task.name!r} already belongs to a pending batch"
                    )
            for task in tasks:
                task.unresolved_deps = len(task.deps)
                task.ready_time = None
                task.start_time = None
                task.finish_time = None
        batch = _Batch(next(self._batch_ids), tasks, on_complete, when)
        batch.graph = graph
        batch.recycle = recycle
        for task in tasks:
            task.batch = batch
        self._batches[batch.batch_id] = batch
        self._seq += 1
        key = _ARRIVE_BASE + self._seq
        events = self._events
        if tasks and when == self._clock and (not events or events[0][0] > when):
            # Every event at or before `when` has been processed, so
            # admitting the batch now is exactly equivalent to popping its
            # arrival event next -- without the heap round-trip.
            self._arrive(batch, when, key)
        else:
            heappush(events, (when, key, batch))
        return batch.batch_id

    # --------------------------------------------------------------- execution
    def _run_events(self, time: float) -> None:
        """Process every event at or before ``time`` (the hot loop).

        The dispatch of :meth:`_step` is inlined so a half-million events
        per simulated month pay one function call (the ``_try_start`` /
        ``_arrive`` work) instead of two, with heap and dispatch constants
        bound locally.
        """
        events = self._events
        complete_base = _COMPLETE_BASE
        arrive_base = _ARRIVE_BASE
        try_start = self._try_start
        while events and events[0][0] <= time:
            now, key, payload = heappop(events)
            self._clock = now
            if key < complete_base:
                self._scan_port(payload, now, key)
            elif key < arrive_base:
                task = payload
                self._tasks_completed += 1
                for dep in task.dependents:
                    remaining = dep.unresolved_deps - 1
                    dep.unresolved_deps = remaining
                    if remaining == 0:
                        dep.ready_time = now
                        try_start(dep, now, key)
                batch = task.batch
                task.batch = None
                batch.remaining -= 1
                if batch.remaining == 0:
                    self._finish_batch(batch)
            else:
                self._arrive(payload, now, key)

    def run_until(self, time: float) -> None:
        """Process every event at or before ``time`` and advance the clock."""
        if self._events:
            self._run_events(time)
        if time > self._clock:
            self._clock = time

    def drain(self) -> float:
        """Run until no events remain; return the final simulated time.

        Raises ``RuntimeError`` if a submitted batch can never complete (a
        dependency deadlock).
        """
        self._run_events(math.inf)
        if self._batches:
            stuck = next(iter(self._batches.values()))
            unfinished = [t.name for t in stuck.tasks if t.finish_time is None][:5]
            raise RuntimeError(
                f"dynamic simulation deadlocked: {len(self._batches)} batches "
                f"unfinished (e.g. tasks {unfinished})"
            )
        return self._clock

    # ---------------------------------------------------------------- internals
    def _try_start(self, task: Task, now: float, event_key: int) -> None:
        """Start ``task`` if every port is idle, else queue it FIFO.

        ``event_key`` is the heap key of the event being processed; a port
        whose hold expires exactly *now* counts as released only if its
        (virtual) release event ordered before the current one, mirroring
        the explicit-release ordering of the original engine.
        """
        if task.start_time is not None:
            return
        ports = task.ports
        if len(ports) == 1:
            # Fast path: most tasks (disk reads, computes) hold one port.
            port = ports[0]
            until = port.busy_until
            if until > now or (until == now and port.release_key > event_key):
                wait_ports = task.wait_ports
                if port not in wait_ports:
                    port.waiters.append(task)
                    wait_ports.append(port)
                    if not port.scan_scheduled:
                        port.scan_scheduled = True
                        heappush(self._events, (until, port.release_key, port))
                return
            wait_ports = task.wait_ports
            if wait_ports:
                for stale in wait_ports:
                    stale.waiters.remove(task)
                wait_ports.clear()
            task.start_time = now
            size = task.size_bytes
            rate = port.rate
            if rate is None or size == 0.0:
                service = task.overhead
            else:
                service = size / rate + task.overhead
            seq = self._seq + 1
            self._seq = seq + 1
            port.busy_bytes += size
            port.busy_seconds += service
            finish = now + service
            port.busy_until = finish
            port.release_key = seq
            task.finish_time = finish
            heappush(self._events, (finish, _COMPLETE_BASE + seq + 1, task))
            if self.on_task_start is not None:
                self.on_task_start(task)
            return
        blocked = None
        for port in ports:
            until = port.busy_until
            if until > now or (until == now and port.release_key > event_key):
                if blocked is None:
                    blocked = [port]
                else:
                    blocked.append(port)
        if blocked is not None:
            wait_ports = task.wait_ports
            events = self._events
            for port in blocked:
                if port not in wait_ports:
                    port.waiters.append(task)
                    wait_ports.append(port)
                    if not port.scan_scheduled:
                        port.scan_scheduled = True
                        heappush(events, (port.busy_until, port.release_key, port))
            return
        wait_ports = task.wait_ports
        if wait_ports:
            # The task starts through one port's scan while still queued on
            # others; those entries could only ever be skipped -- drop them.
            for port in wait_ports:
                port.waiters.remove(task)
            wait_ports.clear()
        task.start_time = now
        longest = 0.0
        size = task.size_bytes
        overhead = task.overhead
        seq = self._seq
        for port in task.ports:
            seq += 1
            rate = port.rate
            if rate is None or size == 0.0:
                service = overhead
            else:
                service = size / rate + overhead
            if service > longest:
                longest = service
            port.busy_bytes += size
            port.busy_seconds += service
            port.busy_until = now + service
            port.release_key = seq
        self._seq = seq + 1
        finish = now + (longest if task.ports else overhead)
        task.finish_time = finish
        heappush(self._events, (finish, _COMPLETE_BASE + seq + 1, task))
        if self.on_task_start is not None:
            self.on_task_start(task)

    def _arrive(self, batch: _Batch, now: float, event_key: int) -> None:
        for task in batch.tasks:
            if task.unresolved_deps == 0:
                task.ready_time = now
                self._try_start(task, now, event_key)
        if batch.remaining == 0:
            self._finish_batch(batch)

    def _scan_port(self, port: Port, time: float, key: int) -> None:
        """Release scan: the port's hold ended at ``time``; retry waiters
        in FIFO order until one occupies it again."""
        port.scan_scheduled = False
        queue = port.waiters
        while queue:
            waiter = queue[0]
            if waiter.start_time is not None:  # pragma: no cover - pruned eagerly
                queue.popleft()
                waiter.wait_ports.remove(port)
                continue
            until = port.busy_until
            if until > time or (until == time and port.release_key > key):
                # A waiter took the port; scan again when it releases.
                if not port.scan_scheduled:
                    port.scan_scheduled = True
                    heappush(
                        self._events,
                        (port.busy_until, port.release_key, port),
                    )
                break
            queue.popleft()
            waiter.wait_ports.remove(port)
            self._try_start(waiter, time, key)

    def _finish_batch(self, batch: _Batch) -> None:
        batch.finish_time = self._clock
        del self._batches[batch.batch_id]
        batch.tasks = []
        graph = batch.graph
        batch.graph = None
        if batch.recycle is not None:
            batch.recycle(graph)
            batch.recycle = None
        if batch.on_complete is not None:
            batch.on_complete(self._clock)
