"""Byte-level correctness of the ECPipe data plane.

Every repair strategy must reconstruct exactly the lost bytes -- this is the
integration-level guarantee that the timing planners alone cannot give.
"""

import pytest

from repro.codes import LRCCode, RotatedRSCode, RSCode
from repro.core import StripeInfo
from repro.ecpipe import ECPipe
from conftest import random_payload

NODES = [f"node{i}" for i in range(17)]
BLOCK_SIZE = 4096
SLICE_SIZE = 512


def build_ecpipe(rng, code, stripe_id=0):
    ecpipe = ECPipe(NODES)
    data = [random_payload(rng, BLOCK_SIZE) for _ in range(code.k)]
    coded = [b.tobytes() for b in code.encode(data)]
    stripe = StripeInfo(code, {i: f"node{i}" for i in range(code.n)}, stripe_id=stripe_id)
    ecpipe.add_stripe(stripe, dict(enumerate(coded)))
    return ecpipe, coded


class TestSetupValidation:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ECPipe([])

    def test_requires_all_payloads(self, rng, rs_9_6):
        ecpipe = ECPipe(NODES)
        stripe = StripeInfo(rs_9_6, {i: f"node{i}" for i in range(9)})
        with pytest.raises(ValueError):
            ecpipe.add_stripe(stripe, {0: b"x"})

    def test_unknown_helper(self):
        ecpipe = ECPipe(["a"])
        with pytest.raises(KeyError):
            ecpipe.helper("b")

    def test_block_size_requires_surviving_block(self, rng, rs_9_6):
        ecpipe, coded = build_ecpipe(rng, rs_9_6)
        for i in range(9):
            ecpipe.erase_block(0, i)
        with pytest.raises(ValueError):
            ecpipe.repair_pipelined(0, [0], "node16", SLICE_SIZE)


class TestPipelinedRepair:
    @pytest.mark.parametrize("failed_index", [0, 5, 9, 13])
    def test_single_block_repair_is_exact(self, rng, rs_14_10, failed_index):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        ecpipe.erase_block(0, failed_index)
        repaired = ecpipe.repair_pipelined(0, [failed_index], "node16", SLICE_SIZE)
        assert repaired[failed_index] == coded[failed_index]

    def test_uneven_slice_size(self, rng, rs_9_6):
        ecpipe, coded = build_ecpipe(rng, rs_9_6)
        ecpipe.erase_block(0, 2)
        repaired = ecpipe.repair_pipelined(0, [2], "node16", slice_size=600)
        assert repaired[2] == coded[2]

    def test_cyclic_repair_is_exact(self, rng, rs_14_10):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        ecpipe.erase_block(0, 1)
        repaired = ecpipe.repair_pipelined(0, [1], "node16", SLICE_SIZE, cyclic=True)
        assert repaired[1] == coded[1]

    def test_cyclic_rejects_multi_block(self, rng, rs_14_10):
        ecpipe, _ = build_ecpipe(rng, rs_14_10)
        with pytest.raises(ValueError):
            ecpipe.repair_pipelined(0, [1, 2], "node16", SLICE_SIZE, cyclic=True)

    def test_multi_block_repair_with_distinct_requestors(self, rng, rs_14_10):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        for index in (3, 7, 11):
            ecpipe.erase_block(0, index)
        repaired = ecpipe.repair_pipelined(
            0, [3, 7, 11], ["node14", "node15", "node16"], SLICE_SIZE
        )
        for index in (3, 7, 11):
            assert repaired[index] == coded[index]

    def test_greedy_helper_selection_still_exact(self, rng, rs_14_10):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        ecpipe.erase_block(0, 0)
        first = ecpipe.repair_pipelined(0, [0], "node16", SLICE_SIZE, greedy=True)
        second = ecpipe.repair_pipelined(0, [0], "node16", SLICE_SIZE, greedy=True)
        assert first[0] == coded[0]
        assert second[0] == coded[0]

    def test_lrc_local_repair(self, rng, lrc_12_2_2):
        ecpipe, coded = build_ecpipe(rng, lrc_12_2_2)
        ecpipe.erase_block(0, 8)
        repaired = ecpipe.repair_pipelined(0, [8], "node16", SLICE_SIZE)
        assert repaired[8] == coded[8]
        # local repair reads only the local group (data blocks + local parity)
        group_nodes = {f"node{i}" for i in (6, 7, 9, 10, 11, 13)}
        for node in group_nodes:
            assert ecpipe.helper(node).bytes_read == BLOCK_SIZE
        # blocks outside the local group are never read (node0 is only probed
        # by the middleware to learn the block size)
        for i in (1, 2, 14, 15):
            assert ecpipe.helper(f"node{i}").bytes_read == 0

    def test_rotated_rs_repair(self, rng):
        code = RotatedRSCode(9, 6)
        ecpipe, coded = build_ecpipe(rng, code)
        ecpipe.erase_block(0, 4)
        repaired = ecpipe.repair_pipelined(0, [4], "node16", SLICE_SIZE)
        assert repaired[4] == coded[4]


class TestOtherSchemes:
    def test_conventional_repair_is_exact(self, rng, rs_14_10):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        ecpipe.erase_block(0, 6)
        repaired = ecpipe.repair_conventional(0, [6], "node16")
        assert repaired[6] == coded[6]

    def test_conventional_multi_block(self, rng, rs_14_10):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        repaired = ecpipe.repair_conventional(0, [2, 12], "node16")
        assert repaired[2] == coded[2]
        assert repaired[12] == coded[12]

    @pytest.mark.parametrize("failed_index", [0, 4, 10, 12])
    def test_ppr_repair_is_exact(self, rng, rs_14_10, failed_index):
        ecpipe, coded = build_ecpipe(rng, rs_14_10)
        ecpipe.erase_block(0, failed_index)
        assert ecpipe.repair_ppr(0, failed_index, "node16") == coded[failed_index]

    def test_all_schemes_agree(self, rng, rs_9_6):
        ecpipe, coded = build_ecpipe(rng, rs_9_6)
        ecpipe.erase_block(0, 7)
        pipelined = ecpipe.repair_pipelined(0, [7], "node16", SLICE_SIZE)[7]
        conventional = ecpipe.repair_conventional(0, [7], "node16")[7]
        ppr = ecpipe.repair_ppr(0, 7, "node16")
        assert pipelined == conventional == ppr == coded[7]


class TestNodeRecovery:
    def test_recover_node_restores_all_blocks(self, rng, rs_9_6):
        ecpipe = ECPipe(NODES)
        payloads = {}
        for stripe_id in range(3):
            data = [random_payload(rng, 1024) for _ in range(6)]
            coded = [b.tobytes() for b in rs_9_6.encode(data)]
            # rotate placement so node0 stores a different block per stripe
            locations = {i: f"node{(i + stripe_id) % 9}" for i in range(9)}
            stripe = StripeInfo(rs_9_6, locations, stripe_id=stripe_id)
            ecpipe.add_stripe(stripe, dict(enumerate(coded)))
            payloads[stripe_id] = coded
        lost = ecpipe.erase_node("node0")
        assert len(lost) == 3
        repaired = ecpipe.recover_node("node0", ["node15", "node16"], slice_size=256)
        for (stripe_id, block_index), payload in repaired.items():
            assert payload == payloads[stripe_id][block_index]

    def test_recover_node_without_blocks_raises(self, rng, rs_9_6):
        ecpipe, _ = build_ecpipe(rng, rs_9_6)
        with pytest.raises(ValueError):
            ecpipe.recover_node("node16", ["node15"], slice_size=256)

    def test_recover_node_requires_requestors(self, rng, rs_9_6):
        ecpipe, _ = build_ecpipe(rng, rs_9_6)
        with pytest.raises(ValueError):
            ecpipe.recover_node("node0", [], slice_size=256)

    def test_restore_block_round_trip(self, rng, rs_9_6):
        ecpipe, coded = build_ecpipe(rng, rs_9_6)
        ecpipe.erase_block(0, 1)
        repaired = ecpipe.repair_pipelined(0, [1], "node16", SLICE_SIZE)
        ecpipe.restore_block(0, 1, repaired[1])
        stripe = ecpipe.coordinator.stripe(0)
        helper = ecpipe.helper(stripe.location(1))
        assert helper.read_block("stripe0.block1") == coded[1]
