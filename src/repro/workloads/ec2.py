"""Amazon EC2 geo-distributed deployment (section 6.2, Table 1).

The paper measures inner- and cross-region bandwidth with iperf across four
regions in North America and four in Asia, and stripes ``(16, 12)`` RS-coded
blocks over four instances per region.  The two measured matrices (Table 1,
in Mb/s) are embedded here verbatim and used as the simulated pairwise link
bandwidths; optional multiplicative jitter models the fluctuation the paper
notes across runs.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from repro.cluster.builders import build_geo_cluster
from repro.cluster.cluster import Cluster
from repro.cluster.spec import ClusterSpec
from repro.cluster.units import mbps

#: Table 1(a): North America region-to-region bandwidth in Mb/s.
#: ``matrix[src][dst]``; the diagonal is the inner-region bandwidth.
NORTH_AMERICA_BANDWIDTH_MBPS: Dict[str, Dict[str, float]] = {
    "california": {"california": 501.3, "canada": 57.2, "ohio": 44.1, "oregon": 299.9},
    "canada": {"california": 55.3, "canada": 732.0, "ohio": 63.3, "oregon": 48.0},
    "ohio": {"california": 46.3, "canada": 65.7, "ohio": 332.5, "oregon": 95.6},
    "oregon": {"california": 297.8, "canada": 50.2, "ohio": 93.6, "oregon": 250.1},
}

#: Table 1(b): Asia region-to-region bandwidth in Mb/s.
ASIA_BANDWIDTH_MBPS: Dict[str, Dict[str, float]] = {
    "mumbai": {"mumbai": 624.8, "seoul": 62.3, "singapore": 39.5, "tokyo": 37.7},
    "seoul": {"mumbai": 63.8, "seoul": 265.7, "singapore": 86.1, "tokyo": 183.2},
    "singapore": {"mumbai": 41.5, "seoul": 88.1, "singapore": 493.0, "tokyo": 49.1},
    "tokyo": {"mumbai": 39.7, "seoul": 181.0, "singapore": 46.9, "tokyo": 489.1},
}

#: Mapping of cluster name to its Table 1 matrix.
EC2_CLUSTERS: Dict[str, Dict[str, Dict[str, float]]] = {
    "north_america": NORTH_AMERICA_BANDWIDTH_MBPS,
    "asia": ASIA_BANDWIDTH_MBPS,
}


def bandwidth_matrix_bytes(
    matrix_mbps: Mapping[str, Mapping[str, float]],
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Convert a Table 1 matrix from Mb/s to bytes/s, optionally with jitter.

    Parameters
    ----------
    matrix_mbps:
        Region-to-region bandwidth in Mb/s.
    jitter:
        Relative uniform jitter (e.g. ``0.2`` draws each entry from
        ``[0.8, 1.2]`` times its nominal value), modelling the run-to-run
        fluctuation the paper observes.
    seed:
        Seed for reproducible jitter.
    """
    if jitter < 0 or jitter >= 1:
        raise ValueError("jitter must be in [0, 1)")
    rng = random.Random(seed)
    out: Dict[str, Dict[str, float]] = {}
    for src, row in matrix_mbps.items():
        out[src] = {}
        for dst, value in row.items():
            factor = 1.0 + rng.uniform(-jitter, jitter) if jitter else 1.0
            out[src][dst] = mbps(value * factor)
    return out


def build_ec2_cluster(
    cluster_name: str = "north_america",
    nodes_per_region: int = 4,
    jitter: float = 0.0,
    seed: Optional[int] = None,
    spec: Optional[ClusterSpec] = None,
) -> Cluster:
    """Build one of the paper's two EC2 clusters.

    Parameters
    ----------
    cluster_name:
        ``"north_america"`` or ``"asia"``.
    nodes_per_region:
        EC2 instances hosting helpers per region (four in the paper).
    jitter, seed:
        Optional bandwidth jitter (see :func:`bandwidth_matrix_bytes`).
    spec:
        Hardware parameters for the per-node ports.
    """
    try:
        matrix = EC2_CLUSTERS[cluster_name]
    except KeyError:
        raise ValueError(
            f"unknown EC2 cluster {cluster_name!r}; expected one of {sorted(EC2_CLUSTERS)}"
        ) from None
    matrix_bytes = bandwidth_matrix_bytes(matrix, jitter=jitter, seed=seed)
    return build_geo_cluster(
        list(matrix), matrix_bytes, nodes_per_region=nodes_per_region, spec=spec
    )


def regions(cluster_name: str = "north_america"):
    """Region names of one of the EC2 clusters."""
    return list(EC2_CLUSTERS[cluster_name])
