"""Unit tests for the discrete-event engine, ports and task graphs."""

import math

import pytest

from repro.sim import Port, Simulator, Task, TaskGraph
from repro.sim.resources import effective_rate


class TestPort:
    def test_service_time(self):
        port = Port("p", rate=100.0)
        assert port.service_time(50) == pytest.approx(0.5)
        assert port.service_time(0) == 0.0

    def test_unrated_port(self):
        port = Port("sync")
        assert port.rate is None
        assert port.service_time(1000) == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Port("p", rate=0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Port("p", rate=1.0).service_time(-1)

    def test_utilisation(self):
        port = Port("p", rate=10.0)
        port.busy_seconds = 5.0
        assert port.utilisation(10.0) == pytest.approx(0.5)
        assert port.utilisation(0.0) == 0.0

    def test_effective_rate(self):
        assert effective_rate([Port("a", 10), Port("b", 5)]) == 5
        assert effective_rate([Port("sync")]) == math.inf


class TestTaskGraph:
    def test_add_and_dependencies(self):
        graph = TaskGraph()
        port = Port("p", rate=100.0)
        first = graph.add_task("first", [port], size_bytes=100)
        second = graph.add_task("second", [port], size_bytes=100, deps=[first])
        assert len(graph) == 2
        assert second.deps == [first]
        assert first.dependents == [second]

    def test_after_ignores_none(self):
        graph = TaskGraph()
        task = graph.add_task("t", [], size_bytes=0)
        task.after(None)
        assert task.deps == []

    def test_task_cannot_depend_on_itself(self):
        graph = TaskGraph()
        task = graph.add_task("t", [])
        with pytest.raises(ValueError):
            task.after(task)

    def test_task_cannot_join_two_graphs(self):
        graph = TaskGraph()
        task = graph.add_task("t", [])
        with pytest.raises(ValueError):
            TaskGraph().add(task)

    def test_total_bytes_by_kind(self):
        graph = TaskGraph()
        port = Port("p", rate=1.0)
        graph.add_task("a", [port], size_bytes=10, kind="transfer")
        graph.add_task("b", [port], size_bytes=5, kind="disk")
        assert graph.total_bytes() == 15
        assert graph.total_bytes("transfer") == 10

    def test_cycle_detection(self):
        graph = TaskGraph()
        a = graph.add_task("a", [])
        b = graph.add_task("b", [], deps=[a])
        a.after(b)
        with pytest.raises(ValueError):
            graph.validate_acyclic()

    def test_merge(self):
        first = TaskGraph()
        first.add_task("a", [])
        second = TaskGraph()
        second.add_task("b", [])
        first.merge(second)
        assert len(first) == 2
        assert [t.task_id for t in first.tasks] == [0, 1]

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task("t", [], size_bytes=-1)
        with pytest.raises(ValueError):
            Task("t", [], overhead=-1)


class TestSimulator:
    def test_single_task_duration(self):
        graph = TaskGraph()
        port = Port("p", rate=100.0)
        graph.add_task("t", [port], size_bytes=200, overhead=0.5)
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(2.5)
        assert result.num_tasks == 1

    def test_serialisation_on_shared_port(self):
        graph = TaskGraph()
        port = Port("p", rate=100.0)
        for i in range(4):
            graph.add_task(f"t{i}", [port], size_bytes=100)
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(4.0)

    def test_parallelism_on_disjoint_ports(self):
        graph = TaskGraph()
        for i in range(4):
            graph.add_task(f"t{i}", [Port(f"p{i}", rate=100.0)], size_bytes=100)
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(1.0)

    def test_dependency_chain(self):
        graph = TaskGraph()
        port_a, port_b = Port("a", 100.0), Port("b", 100.0)
        first = graph.add_task("first", [port_a], size_bytes=100)
        graph.add_task("second", [port_b], size_bytes=100, deps=[first])
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(2.0)

    def test_bottleneck_port_sets_duration(self):
        graph = TaskGraph()
        fast, slow = Port("fast", 1000.0), Port("slow", 10.0)
        graph.add_task("t", [fast, slow], size_bytes=100)
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(10.0)

    def test_fast_port_released_before_slow_transfer_ends(self):
        # Two transfers share a fast downlink but are each bottlenecked by
        # their own slow link: they overlap, so the makespan is ~one slow
        # transfer, not two.
        graph = TaskGraph()
        downlink = Port("down", rate=1000.0)
        for i in range(2):
            slow_link = Port(f"slow{i}", rate=10.0)
            graph.add_task(f"t{i}", [Port(f"up{i}", 1000.0), downlink, slow_link], size_bytes=100)
        result = Simulator(graph).run()
        assert result.makespan < 11.0

    def test_congested_port_serialises(self):
        graph = TaskGraph()
        downlink = Port("down", rate=10.0)
        for i in range(3):
            graph.add_task(f"t{i}", [Port(f"up{i}", 1000.0), downlink], size_bytes=100)
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(30.0)

    def test_pipelining_approaches_single_stage_time(self):
        # A two-stage pipeline over many units should take ~one stage's total
        # load, not the sum of both stages.
        graph = TaskGraph()
        stage1, stage2 = Port("s1", 100.0), Port("s2", 100.0)
        units = 50
        previous = None
        for i in range(units):
            first = graph.add_task(f"a{i}", [stage1], size_bytes=10)
            second = graph.add_task(f"b{i}", [stage2], size_bytes=10, deps=[first])
            previous = second
        result = Simulator(graph).run()
        ideal = units * 0.1
        assert ideal <= result.makespan <= ideal * 1.2

    def test_zero_port_task(self):
        graph = TaskGraph()
        done = graph.add_task("sync", [], overhead=0.25)
        graph.add_task("next", [Port("p", 10.0)], size_bytes=10, deps=[done])
        result = Simulator(graph).run()
        assert result.makespan == pytest.approx(1.25)

    def test_result_accounting(self):
        graph = TaskGraph()
        port = Port("p", rate=100.0)
        graph.add_task("a", [port], size_bytes=100, kind="transfer")
        graph.add_task("b", [port], size_bytes=300, kind="disk")
        result = Simulator(graph).run()
        assert result.transfer_bytes() == 100
        assert result.bytes_by_kind["disk"] == 300
        assert result.port_busy_seconds["p"] == pytest.approx(4.0)
        assert result.port_utilisation("p") == pytest.approx(1.0)
        assert result.max_port_busy_seconds() == pytest.approx(4.0)

    def test_trace_records_start_order(self):
        graph = TaskGraph()
        port = Port("p", rate=100.0)
        first = graph.add_task("first", [port], size_bytes=100)
        graph.add_task("second", [port], size_bytes=100, deps=[first])
        simulator = Simulator(graph, trace=True)
        simulator.run()
        assert [t.name for t in simulator.trace] == ["first", "second"]

    def test_rerun_is_deterministic(self, flat_cluster):
        graph = TaskGraph()
        ports = flat_cluster.transfer_ports("node0", "node1")
        for i in range(5):
            graph.add_task(f"t{i}", ports, size_bytes=1000)
        first = Simulator(graph).run().makespan
        second = Simulator(graph).run().makespan
        assert first == pytest.approx(second)

    def test_empty_port_utilisation(self):
        result = Simulator(TaskGraph()).run()
        assert result.makespan == 0.0
        assert result.max_port_busy_seconds() == 0.0
        assert result.port_utilisation("missing") == 0.0
