"""Topology builders for the environments evaluated in the paper.

Three canned topologies cover every experiment:

* :func:`build_flat_cluster` -- the 17-machine local testbed of section 6.1;
* :func:`build_rack_cluster` -- the rack-based data centre of section 4.2 /
  Figure 8(h), with an oversubscribed core;
* :func:`build_geo_cluster` -- the EC2 geo-distributed deployment of section
  6.2 / Figure 9, where every directed node pair is capped by the measured
  region-to-region bandwidth.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.spec import ClusterSpec


def build_flat_cluster(
    num_nodes: int,
    spec: Optional[ClusterSpec] = None,
    name_prefix: str = "node",
) -> Cluster:
    """Build a flat (single-switch) cluster of ``num_nodes`` storage nodes.

    Parameters
    ----------
    num_nodes:
        Number of storage nodes (the paper's testbed hosts 16 helpers plus a
        coordinator; the coordinator is control-plane only and does not need
        a simulated node).
    spec:
        Hardware parameters; defaults to the 1 Gb/s testbed defaults.
    name_prefix:
        Node names are ``f"{name_prefix}{i}"``.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    cluster = Cluster(spec)
    for i in range(num_nodes):
        cluster.add_node(f"{name_prefix}{i}")
    return cluster


def build_rack_cluster(
    num_racks: int,
    nodes_per_rack: int,
    cross_rack_bandwidth: float,
    spec: Optional[ClusterSpec] = None,
    name_prefix: str = "node",
) -> Cluster:
    """Build a rack-based data centre with an oversubscribed core.

    Each rack gets a core uplink and downlink of ``cross_rack_bandwidth``
    bytes/second that every cross-rack transfer must traverse, modelling the
    limited cross-rack bandwidth of section 2.3.

    Parameters
    ----------
    num_racks:
        Number of racks.
    nodes_per_rack:
        Storage nodes per rack.
    cross_rack_bandwidth:
        Core bandwidth per rack, bytes/second.
    """
    if num_racks <= 0 or nodes_per_rack <= 0:
        raise ValueError("num_racks and nodes_per_rack must be positive")
    base = spec if spec is not None else ClusterSpec()
    cluster = Cluster(base.with_cross_rack_bandwidth(cross_rack_bandwidth))
    index = 0
    for rack in range(num_racks):
        rack_name = f"rack{rack}"
        for _ in range(nodes_per_rack):
            cluster.add_node(f"{name_prefix}{index}", rack=rack_name)
            index += 1
    return cluster


def build_geo_cluster(
    regions: Mapping[str, int] | Sequence[str],
    bandwidth_matrix: Mapping[str, Mapping[str, float]],
    nodes_per_region: int = 4,
    spec: Optional[ClusterSpec] = None,
) -> Cluster:
    """Build a geo-distributed cluster from a region bandwidth matrix.

    Parameters
    ----------
    regions:
        Either a mapping ``{region: node_count}`` or a sequence of region
        names (in which case ``nodes_per_region`` nodes are created in each).
    bandwidth_matrix:
        ``matrix[src_region][dst_region]`` bandwidth in bytes/second, as in
        Table 1 of the paper (the diagonal is the inner-region bandwidth).
    nodes_per_region:
        Node count per region when ``regions`` is a sequence.
    spec:
        Hardware parameters.  Node uplinks/downlinks keep the spec bandwidth;
        the pairwise link caps come from the matrix.
    """
    if isinstance(regions, Mapping):
        region_counts: Dict[str, int] = dict(regions)
    else:
        region_counts = {name: nodes_per_region for name in regions}
    if not region_counts:
        raise ValueError("at least one region is required")
    for region in region_counts:
        if region not in bandwidth_matrix:
            raise ValueError(f"bandwidth matrix has no row for region {region!r}")
        for other in region_counts:
            if other not in bandwidth_matrix[region]:
                raise ValueError(
                    f"bandwidth matrix row {region!r} has no entry for {other!r}"
                )

    cluster = Cluster(spec)
    for region, count in region_counts.items():
        if count <= 0:
            raise ValueError(f"region {region!r} must have a positive node count")
        for i in range(count):
            cluster.add_node(f"{region}-{i}", region=region)

    names = cluster.node_names()
    for src in names:
        for dst in names:
            if src == dst:
                continue
            src_region = cluster.node(src).region
            dst_region = cluster.node(dst).region
            bandwidth = bandwidth_matrix[src_region][dst_region]
            cluster.set_link_bandwidth(src, dst, bandwidth)
    return cluster
