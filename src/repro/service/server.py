"""Asyncio frame-server base shared by the three service roles.

A :class:`FrameServer` accepts connections, reads frames in a loop and
dispatches them to the subclass's :meth:`~FrameServer.handle`.  The base
implements the protocol chores every role needs identically:

* ``PING`` / ``STAT`` replies,
* graceful ``SHUTDOWN`` (reply ``OK``, then stop accepting and unblock
  :meth:`serve_until_shutdown` -- the process-mode entry point),
* converting handler exceptions into ``ERROR`` frames so a bad request
  never tears down the server, and
* connection cleanup.

Handlers may *take over* a connection for streaming (the repair chain and
delivery paths) by returning ``False``, which ends the dispatch loop
without closing the server.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, Optional, Tuple

from repro.service.protocol import (
    Frame,
    Op,
    ProtocolError,
    RemoteError,
    close_writer,
    read_frame,
    write_frame,
)

logger = logging.getLogger("repro.service")


class FrameServer:
    """A role server: accepts framed connections and dispatches opcodes.

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        Port to bind; ``0`` picks an ephemeral port (reported through
        :attr:`address` after :meth:`start`).
    """

    #: Role name reported by PING/STAT.
    role = "server"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._connections: set = set()
        #: Frames served, by opcode name (diagnostics via STAT).
        self.frames_served: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError(f"{self.role} server has not been started")
        return self._address

    @property
    def running(self) -> bool:
        """True while the listening socket is open."""
        return self._server is not None

    async def start(self) -> "FrameServer":
        """Bind the listening socket (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
            sock = self._server.sockets[0]
            self._address = sock.getsockname()[:2]
        return self

    async def stop(self) -> None:
        """Stop accepting connections, drain handlers, release the socket."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain in-flight connection handlers deterministically, so no task
        # outlives the server into event-loop teardown.  Handlers that are
        # just finishing (e.g. the one that served SHUTDOWN, closing its
        # transport) get a short grace before being cancelled.
        pending = [task for task in self._connections if not task.done()]
        if pending:
            _, still_pending = await asyncio.wait(pending, timeout=1.0)
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        self._connections.clear()

    async def abort(self) -> None:
        """Kill the server abruptly: no grace, in-flight handlers cancelled.

        The in-process analogue of ``kill -9`` -- chaos tests use it through
        :meth:`LocalDeployment.crash_role` so a mid-chain transfer dies the
        way a crashed helper process would, instead of being allowed to
        finish during :meth:`stop`'s drain grace.
        """
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for task in self._connections if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()

    def request_shutdown(self) -> None:
        """Unblock :meth:`serve_until_shutdown` (signal-handler safe)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``SHUTDOWN`` frame arrives, then stop.

        The process-mode entry point: the child process starts the server,
        reports its address, and parks here.
        """
        await self.start()
        await self._shutdown.wait()
        await self.stop()

    # ------------------------------------------------------------- dispatch
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self.frames_served[frame.op.name] = (
                    self.frames_served.get(frame.op.name, 0) + 1
                )
                if frame.op == Op.PING:
                    await write_frame(writer, Op.OK, {"role": self.role})
                    continue
                if frame.op == Op.STAT:
                    await write_frame(writer, Op.OK, self.stat())
                    continue
                if frame.op == Op.SHUTDOWN:
                    await write_frame(writer, Op.OK, {"role": self.role})
                    self._shutdown.set()
                    break
                try:
                    keep_dispatching = await self.handle(frame, reader, writer)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # Bad request or a downstream failure (a dead/wedged
                    # helper surfaces as ConnectionError/TimeoutError here;
                    # a poisoned header that wasn't what the handler expected
                    # as TypeError/KeyError): report to this client, keep
                    # serving others (and this connection).  If *this*
                    # connection is the broken one, the ERROR write below
                    # raises and the outer handler closes it.
                    logger.debug(
                        "%s: %s handler error: %s: %s",
                        self.role,
                        frame.op.name,
                        type(exc).__name__,
                        exc,
                    )
                    await write_frame(
                        writer, Op.ERROR, {"message": f"{type(exc).__name__}: {exc}"}
                    )
                    continue
                if keep_dispatching is False:
                    break
        except (ConnectionError, ProtocolError, asyncio.IncompleteReadError) as exc:
            # Peer vanished mid-frame or sent unparseable bytes: log and
            # drop the connection; the serve loop itself must never die to a
            # poisoned peer.
            logger.debug("%s: dropped connection: %s", self.role, exc)
        except asyncio.CancelledError:
            # Server shutdown with this connection mid-request: close the
            # transport and end the task *cleanly*, so teardown never logs
            # spurious "exception in callback" noise from the streams layer.
            writer.close()
            return
        finally:
            await close_writer(writer)

    async def handle(
        self,
        frame: Frame,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Optional[bool]:
        """Serve one role-specific frame.

        Return ``False`` to end the dispatch loop for this connection (a
        streaming handler that consumed the rest of the stream); any other
        return keeps dispatching.
        """
        raise ProtocolError(f"{self.role} cannot serve {frame.op.name}")

    def stat(self) -> Dict[str, object]:
        """Role statistics returned by ``STAT`` (subclasses extend)."""
        return {"role": self.role, "frames": dict(self.frames_served)}
