"""Cluster-wide hardware and overhead parameters.

The paper's testbed is described in section 6.1: quad-core i5 machines with
SATA disks on 1 Gb/s (default) or 10 Gb/s Ethernet.  :class:`ClusterSpec`
captures the handful of calibration constants the simulator needs.  The
defaults are chosen so that the headline numbers of Figure 8 fall in the same
range as the paper (e.g. a 64 MiB direct send over 1 Gb/s takes ~0.57 s and a
(14,10) conventional repair takes ~5.5 s); EXPERIMENTS.md records the
calibration in detail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.cluster.units import gbps


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware parameters shared by all nodes of a cluster.

    Attributes
    ----------
    network_bandwidth:
        Uplink and downlink bandwidth of every node, bytes/second.
    disk_bandwidth:
        Sequential disk read/write bandwidth, bytes/second.  Large because
        repair reads are sequential and usually served from the page cache;
        it only becomes relevant at 10 Gb/s network speed (Figure 8(i)).
    cpu_bandwidth:
        Throughput of the GF(2^8) multiply-accumulate kernel, bytes/second.
    transfer_overhead:
        Fixed per-transfer cost (request issue, RPC, Redis hand-off) in
        seconds.  This is what makes very small slices slow in Figure 8(a).
    disk_overhead:
        Fixed per-read cost in seconds.
    compute_overhead:
        Fixed per-computation cost in seconds.
    cross_rack_bandwidth:
        Bandwidth of each rack's uplink/downlink into the network core,
        bytes/second; ``None`` means the core is not oversubscribed.
    """

    network_bandwidth: float = gbps(1)
    disk_bandwidth: float = 600e6
    cpu_bandwidth: float = 6e9
    transfer_overhead: float = 15e-6
    disk_overhead: float = 5e-6
    compute_overhead: float = 2e-6
    cross_rack_bandwidth: float | None = None

    def __post_init__(self) -> None:
        # Every check names the offending field: a spec travels through env
        # knobs, JSON deployment files and scenario matrices, so "bandwidth
        # must be positive" without the field name is undebuggable.  NaN is
        # rejected explicitly -- it slips through ordering comparisons
        # (``nan <= 0`` is false) and would otherwise poison every simulated
        # duration downstream.
        for name in ("network_bandwidth", "disk_bandwidth", "cpu_bandwidth"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        for name in ("transfer_overhead", "disk_overhead", "compute_overhead"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if self.cross_rack_bandwidth is not None:
            value = self.cross_rack_bandwidth
            if not math.isfinite(value):
                raise ValueError(f"cross_rack_bandwidth must be finite, got {value!r}")
            if value <= 0:
                raise ValueError(
                    f"cross_rack_bandwidth must be positive when set, got {value!r}"
                )

    def with_network_bandwidth(self, bandwidth: float) -> "ClusterSpec":
        """Return a copy with a different node network bandwidth."""
        return replace(self, network_bandwidth=bandwidth)

    def with_cross_rack_bandwidth(self, bandwidth: float | None) -> "ClusterSpec":
        """Return a copy with a different cross-rack core bandwidth."""
        return replace(self, cross_rack_bandwidth=bandwidth)

    def with_overheads(
        self,
        transfer_overhead: float | None = None,
        disk_overhead: float | None = None,
        compute_overhead: float | None = None,
    ) -> "ClusterSpec":
        """Return a copy with some fixed overheads replaced."""
        return replace(
            self,
            transfer_overhead=(
                self.transfer_overhead if transfer_overhead is None else transfer_overhead
            ),
            disk_overhead=self.disk_overhead if disk_overhead is None else disk_overhead,
            compute_overhead=(
                self.compute_overhead if compute_overhead is None else compute_overhead
            ),
        )
