"""Property-based tests for erasure-code invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import LRCCode, RotatedRSCode, RSCode
from repro.codes.base import DecodeError


def _random_blocks(seed: int, k: int, size: int):
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(size)) for _ in range(k)]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    extra=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rs_decodes_from_any_k_random_subset(n, extra, seed):
    """MDS property: any k surviving blocks reconstruct the stripe."""
    k = max(2, n - extra)
    if k >= n:
        k = n - 1
    code = RSCode(n, k)
    data = _random_blocks(seed, k, 48)
    coded = code.encode(data)
    rng = random.Random(seed + 1)
    survivors = sorted(rng.sample(range(n), k))
    available = {i: coded[i].tobytes() for i in survivors}
    decoded = code.decode(available)
    for i in range(n):
        assert decoded[i].tobytes() == coded[i].tobytes()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    failed_count=st.integers(min_value=1, max_value=4),
)
def test_rs_repair_plan_reconstructs_any_failure_set(seed, failed_count):
    """Repair plans rebuild every failed block bit-exactly."""
    code = RSCode(14, 10)
    rng = random.Random(seed)
    data = _random_blocks(seed, 10, 32)
    coded = code.encode(data)
    failed = sorted(rng.sample(range(14), failed_count))
    plan = code.repair_plan(failed)
    repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
    for index in failed:
        assert repaired[index].tobytes() == coded[index].tobytes()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_rs_repair_traffic_equals_k_blocks(seed):
    """A single-block RS repair always reads exactly k helper blocks."""
    rng = random.Random(seed)
    n = rng.randint(6, 16)
    k = rng.randint(2, n - 1)
    code = RSCode(n, k)
    failed = rng.randrange(n)
    assert code.repair_plan([failed]).num_helpers == k


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    failed_index=st.integers(min_value=0, max_value=13),
)
def test_lrc_single_failures_always_local(seed, failed_index):
    """Every data or local-parity failure of an LRC repairs within its group."""
    code = LRCCode(12, 2, 2)
    data = _random_blocks(seed, 12, 40)
    coded = code.encode(data)
    plan = code.repair_plan([failed_index])
    assert plan.num_helpers == code.group_size
    repaired = plan.reconstruct({h: coded[h].tobytes() for h in plan.helpers})
    assert repaired[failed_index].tobytes() == coded[failed_index].tobytes()


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    extra=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rotated_rs_decodes_from_any_k_random_subset(n, extra, seed):
    """Rotated RS keeps the MDS property: any k whole blocks decode."""
    k = max(2, n - extra)  # with n >= 4 and extra <= 4, always 2 <= k < n
    code = RotatedRSCode(n, k)
    data = _random_blocks(seed, k, 48)
    coded = code.encode(data)
    rng = random.Random(seed + 1)
    survivors = sorted(rng.sample(range(n), k))
    available = {i: coded[i].tobytes() for i in survivors}
    decoded = code.decode(available)
    for i in range(n):
        assert decoded[i].tobytes() == coded[i].tobytes()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    failed_count=st.integers(min_value=1, max_value=4),
)
def test_lrc_decode_is_exact_or_refuses(seed, failed_count):
    """For any failure set within the fault tolerance, LRC either decodes
    every block bit-exactly or raises DecodeError -- never a wrong answer.

    LRC is not MDS, so unlike RS not every pattern is decodable; the
    property is soundness, not completeness.
    """
    code = LRCCode(12, 2, 2)
    data = _random_blocks(seed, 12, 40)
    coded = code.encode(data)
    rng = random.Random(seed + 3)
    failed = sorted(rng.sample(range(code.n), failed_count))
    available = {
        i: coded[i].tobytes() for i in range(code.n) if i not in failed
    }
    try:
        decoded = code.decode(available)
    except DecodeError:
        return
    for i in range(code.n):
        assert decoded[i].tobytes() == coded[i].tobytes()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_lrc_decodes_any_single_failure(seed):
    """Single failures are always decodable (that is LRC's whole point)."""
    code = LRCCode(12, 2, 2)
    data = _random_blocks(seed, 12, 40)
    coded = code.encode(data)
    failed = random.Random(seed + 5).randrange(code.n)
    available = {
        i: coded[i].tobytes() for i in range(code.n) if i != failed
    }
    decoded = code.decode(available)
    assert decoded[failed].tobytes() == coded[failed].tobytes()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    extra=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rs_rejects_fewer_than_k_blocks(n, extra, seed):
    """Decoding from k-1 blocks must refuse, not fabricate data."""
    k = max(2, n - extra)  # with n >= 4 and extra <= 4, always 2 <= k < n
    code = RSCode(n, k)
    coded = code.encode(_random_blocks(seed, k, 16))
    survivors = sorted(random.Random(seed + 9).sample(range(n), k - 1))
    available = {i: coded[i].tobytes() for i in survivors}
    with pytest.raises(DecodeError):
        code.decode(available)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    size=st.integers(min_value=1, max_value=256),
)
def test_rs_encoding_is_linear_in_payload(seed, size):
    """Encoding the XOR of two payload sets equals the XOR of their encodings."""
    code = RSCode(6, 4)
    a = _random_blocks(seed, 4, size)
    b = _random_blocks(seed + 7, 4, size)
    xored = [bytes(x ^ y for x, y in zip(pa, pb)) for pa, pb in zip(a, b)]
    coded_a = code.encode(a)
    coded_b = code.encode(b)
    coded_x = code.encode(xored)
    for i in range(6):
        expected = bytes(x ^ y for x, y in zip(coded_a[i].tobytes(), coded_b[i].tobytes()))
        assert coded_x[i].tobytes() == expected
