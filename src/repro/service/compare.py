"""Measured-vs-simulated repair comparison.

The simulator predicts repair makespans for a modelled cluster; the live
service measures them on real sockets and processes.  This harness runs the
*same* repair configuration through both and reports the two side by side,
closing the loop the ROADMAP asks for: the simulator stops being the only
source of truth and becomes a falsifiable predictor.

The measured side boots a localhost deployment (OS processes by default, so
helper GF kernels genuinely run in parallel), stores one seeded stripe,
erases a block, and times degraded reads through each scheme while the
closed-loop :class:`~repro.service.loadgen.LoadGenerator` keeps foreground
reads flowing -- the paper's headline contention scenario.  The predicted
side builds the deployment's simulation twin
(:meth:`~repro.cluster.DeploymentSpec.simulation_cluster`) and asks each
scheme for its simulated makespan on an identical request.

Absolute seconds are not comparable across the two sides (the simulator is
calibrated to the paper's 1 Gb/s testbed, not to loopback TCP); the *ratio*
between schemes is the prediction under test, and both ratios land in the
report for exactly that comparison.
"""

from __future__ import annotations

import asyncio
import random
import shutil
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.deployment import DeploymentSpec
from repro.codes.rs import RSCode
from repro.core.request import RepairRequest, StripeInfo
from repro.obs.metrics import counter_samples, diff_samples
from repro.obs.trace import read_spans, trace_ids, validate_trace
from repro.runtime.runtime import make_scheme
from repro.service.deployment import LocalDeployment
from repro.service.gateway import ServiceClient
from repro.service.loadgen import LoadGenerator
from repro.service.protocol import Op, request

#: Repair traces attached to a comparison report (newest kept).
MAX_REPORT_TRACES = 8

#: Node name the simulation twin uses for the gateway/requestor.
GATEWAY_NODE = "gateway"


@dataclass(frozen=True)
class CompareConfig:
    """One measured-vs-simulated comparison configuration."""

    n: int = 9
    k: int = 6
    block_size: int = 8 * 1024 * 1024
    slice_size: int = 512 * 1024
    schemes: Tuple[str, ...] = ("rp", "conventional")
    #: Timed repetitions per scheme (median reported).
    repeats: int = 3
    #: Closed-loop foreground clients kept running during the timed reads.
    load_concurrency: int = 2
    load_seed: int = 7
    payload_seed: int = 13
    stripe_id: int = 1
    spec: DeploymentSpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n <= self.k or self.k <= 0:
            raise ValueError("need n > k > 0")
        if self.block_size <= 0 or self.slice_size <= 0:
            raise ValueError("block_size and slice_size must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if not self.schemes:
            raise ValueError("at least one scheme is required")
        if self.spec is None:
            object.__setattr__(self, "spec", DeploymentSpec.local(self.n))
        if self.spec.num_helpers < self.n:
            raise ValueError(
                f"deployment has {self.spec.num_helpers} helpers, "
                f"stripe needs {self.n}"
            )

    def code_spec(self) -> Dict[str, object]:
        return {"family": "rs", "n": self.n, "k": self.k}

    def payload(self) -> bytes:
        """The seeded object stored for the comparison (fills k blocks)."""
        return random.Random(self.payload_seed).randbytes(self.k * self.block_size)


def predicted_makespans(config: CompareConfig) -> Dict[str, float]:
    """Simulated repair makespans of the deployment's twin, per scheme."""
    cluster = config.spec.simulation_cluster()
    cluster.add_node(GATEWAY_NODE)
    code = RSCode(config.n, config.k)
    helpers = list(config.spec.helpers)
    stripe = StripeInfo(
        code,
        {i: helpers[i % len(helpers)] for i in range(config.n)},
        stripe_id=config.stripe_id,
    )
    request = RepairRequest(
        stripe, [0], GATEWAY_NODE, config.block_size, config.slice_size
    )
    return {
        scheme: make_scheme(scheme).repair_time(request, cluster).makespan
        for scheme in config.schemes
    }


async def measure_schemes(
    config: CompareConfig, gateway: Tuple[str, int]
) -> Dict[str, Dict[str, object]]:
    """Time degraded reads per scheme on a *booted* deployment.

    Stores the seeded stripe, erases block 0, then, for every scheme,
    repeats the timed degraded read with the load generator running and
    reports per-run seconds, the median, and the foreground load summary.
    """
    client = ServiceClient(gateway)
    payload = config.payload()
    await client.put(config.stripe_id, payload, config.code_spec())
    await client.erase(config.stripe_id, 0)
    results: Dict[str, Dict[str, object]] = {}
    for scheme in config.schemes:
        runs: List[float] = []
        load_reports: List[Dict[str, object]] = []
        for repeat in range(config.repeats):
            generator = LoadGenerator(
                gateway,
                {config.stripe_id: config.k},
                seed=config.load_seed + repeat,
                concurrency=config.load_concurrency,
                scheme="rp",
                slice_size=config.slice_size,
            )
            load_task = asyncio.create_task(generator.run())
            await asyncio.sleep(0.05)  # let the load ramp before timing
            begin = time.perf_counter()
            block, header = await client.read_block(
                config.stripe_id,
                0,
                scheme=scheme,
                slice_size=config.slice_size,
                force_repair=True,
            )
            runs.append(time.perf_counter() - begin)
            generator.stop()
            load_reports.append((await load_task).to_dict())
            if len(block) != config.block_size or not header.get("repaired"):
                raise RuntimeError(
                    f"scheme {scheme!r} returned {len(block)} bytes, "
                    f"repaired={header.get('repaired')}"
                )
        results[scheme] = {
            "runs": runs,
            "median_seconds": statistics.median(runs),
            "load": load_reports[-1],
        }
    # Leave the stripe whole: write the block back through a final repair.
    await client.repair(config.stripe_id, [0], scheme="rp", slice_size=config.slice_size)
    return results


async def gateway_counters(gateway: Tuple[str, int]) -> Dict[str, float]:
    """Monotone samples of the gateway's registry, via the METRICS op."""
    reply = await request(gateway[0], gateway[1], Op.METRICS, {})
    return counter_samples(reply.payload.decode("utf-8"))


def trace_summary(trace_dir: str) -> List[Dict[str, object]]:
    """JSON-safe digest of the pipelined repairs recorded under a trace dir.

    Only traces that actually ran a chain hop qualify (the load generator's
    healthy reads would swamp the report otherwise); each digest carries the
    structural problems :func:`validate_trace` found, which the chaos differ
    and tests can assert empty.
    """
    spans = read_spans(trace_dir)
    summary: List[Dict[str, object]] = []
    for trace_id, root_op, _start in trace_ids(spans):
        trace_spans = [s for s in spans if s.get("trace_id") == trace_id]
        hops = sum(1 for s in trace_spans if s.get("op") == "CHAIN")
        if hops == 0:
            continue
        summary.append(
            {
                "trace_id": trace_id,
                "root_op": root_op,
                "spans": len(trace_spans),
                "chain_hops": hops,
                "problems": validate_trace(trace_spans),
            }
        )
    return summary[-MAX_REPORT_TRACES:]


def run_comparison(
    config: Optional[CompareConfig] = None,
    mode: str = "process",
    deployment: Optional[LocalDeployment] = None,
) -> Dict[str, object]:
    """Full comparison: boot, measure, predict, report.

    Parameters
    ----------
    config:
        Comparison configuration (defaults to the (9, 6) 8 MiB setup).
    mode:
        ``"process"`` (default; real parallelism) or ``"inproc"`` (single
        event loop -- used by tests, where wall-clock is not the point).
    deployment:
        An already-booted deployment to reuse; when given, ``mode`` is
        ignored and the deployment is left running.
    """
    config = config if config is not None else CompareConfig()
    own_deployment = deployment is None

    async def _measure_with_obs(
        gateway: Tuple[str, int]
    ) -> Tuple[Dict[str, Dict[str, object]], Dict[str, float]]:
        before = await gateway_counters(gateway)
        measured = await measure_schemes(config, gateway)
        after = await gateway_counters(gateway)
        return measured, diff_samples(before, after)

    async def _measure_inproc(trace_dir: str):
        local = LocalDeployment(spec=config.spec, trace_dir=trace_dir)
        await local.start()
        try:
            return await _measure_with_obs(local.gateway_address)
        finally:
            await local.stop()

    traces: List[Dict[str, object]] = []
    if deployment is not None:
        measured, metrics_delta = asyncio.run(
            _measure_with_obs(deployment.gateway_address)
        )
        if deployment.trace_dir:
            traces = trace_summary(deployment.trace_dir)
    elif mode in ("inproc", "process"):
        trace_dir = tempfile.mkdtemp(prefix="ecpipe-compare-trace-")
        try:
            if mode == "inproc":
                measured, metrics_delta = asyncio.run(_measure_inproc(trace_dir))
            else:
                local = LocalDeployment(spec=config.spec, trace_dir=trace_dir)
                local.up()
                try:
                    measured, metrics_delta = asyncio.run(
                        _measure_with_obs(local.gateway_address)
                    )
                finally:
                    local.down()
            traces = trace_summary(trace_dir)
        finally:
            shutil.rmtree(trace_dir, ignore_errors=True)
    else:
        raise ValueError(f"unknown mode {mode!r}; expected 'process' or 'inproc'")

    predicted = predicted_makespans(config)
    report: Dict[str, object] = {
        "config": {
            "n": config.n,
            "k": config.k,
            "block_size": config.block_size,
            "slice_size": config.slice_size,
            "repeats": config.repeats,
            "load_concurrency": config.load_concurrency,
            "mode": "external" if not own_deployment else mode,
        },
        "measured": measured,
        "predicted": {scheme: predicted[scheme] for scheme in config.schemes},
        "metrics": {"gateway_delta": metrics_delta},
        "traces": traces,
    }
    if "rp" in config.schemes and "conventional" in config.schemes:
        measured_rp = measured["rp"]["median_seconds"]
        measured_conv = measured["conventional"]["median_seconds"]
        report["measured_ratio"] = measured_conv / measured_rp
        report["predicted_ratio"] = predicted["conventional"] / predicted["rp"]
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table of a comparison report."""
    lines = []
    config = report["config"]
    lines.append(
        f"measured vs simulated -- ({config['n']}, {config['k']}), "
        f"block {config['block_size'] / 2**20:.1f} MiB, "
        f"slice {config['slice_size'] / 2**10:.0f} KiB, "
        f"{config['load_concurrency']} foreground clients"
    )
    lines.append(f"{'scheme':<14}{'measured (s)':>14}{'simulated (s)':>15}")
    for scheme, outcome in report["measured"].items():
        predicted = report["predicted"][scheme]
        lines.append(
            f"{scheme:<14}{outcome['median_seconds']:>14.3f}{predicted:>15.3f}"
        )
    if "measured_ratio" in report:
        lines.append(
            f"conventional/rp ratio: measured {report['measured_ratio']:.2f}x, "
            f"simulated {report['predicted_ratio']:.2f}x"
        )
    if report.get("traces"):
        problems = sum(len(t["problems"]) for t in report["traces"])
        lines.append(
            f"repair traces captured: {len(report['traces'])} "
            f"({problems} structural problem(s))"
        )
    return "\n".join(lines)
