"""Differential conformance checking.

The optimized engine stack (plan memoization, graph templates, the
virtual-release event core, streaming metrics) is pinned by golden traces --
but goldens are captured from the optimized engine itself, so they cannot
catch a bug the engine was *born* with.  This subpackage supplies the
independent evidence:

:mod:`repro.sim.reference` (lives in ``sim`` next to the engine it shadows)
    A naive, unoptimized interpreter of the same simulation contract.
:mod:`repro.conformance.oracles`
    Analytical oracles: exact closed-form makespans for conventional repair
    and repair pipelining on homogeneous single-stripe repairs, bounded
    envelopes for PPR and contended runs, and structural invariants (no
    port double-booking, monotone event clock, conservation of bytes,
    ``rp <= ppr <= conventional``).
:mod:`repro.conformance.differ`
    The differential harness: randomized "chaos" scenarios (rack bursts,
    Zipf hot spots, transient storms, throttle caps, topology churn) run on
    both engines with identical seeds and diffed field by field.

Run it locally::

    PYTHONPATH=src python -m repro.conformance --scenarios 20

CI runs the same fixed-seed matrix as a required job, so every future
optimization PR must keep the optimized engine byte-equivalent to the
reference implementation (or explicitly change both and say why).
"""

from repro.conformance.differ import (
    DifferentialReport,
    FieldMismatch,
    TrialDiff,
    chaos_scenarios,
    diff_trial,
    live_vocabulary_scenarios,
    run_differential_matrix,
)
from repro.conformance.oracles import (
    OracleReport,
    OracleViolation,
    check_report_invariants,
    check_schedule_invariants,
    check_single_repair,
    expected_conventional_seconds,
    expected_rp_seconds,
    ppr_envelope_seconds,
)

__all__ = [
    "chaos_scenarios",
    "diff_trial",
    "live_vocabulary_scenarios",
    "run_differential_matrix",
    "DifferentialReport",
    "TrialDiff",
    "FieldMismatch",
    "OracleReport",
    "OracleViolation",
    "check_schedule_invariants",
    "check_report_invariants",
    "check_single_repair",
    "expected_conventional_seconds",
    "expected_rp_seconds",
    "ppr_envelope_seconds",
]
