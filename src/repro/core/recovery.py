"""Full-node recovery (sections 3.3 and 6.4).

When a storage node fails, one block of many stripes is lost.  The stripes
are independent, so their repairs can run concurrently; the challenge is load
balance: a helper that serves many concurrent repairs becomes the straggler.
The paper's answer is greedy least-recently-selected helper scheduling -- for
each stripe, pick the ``k`` helpers that were least recently used by previous
stripes -- plus spreading the reconstructed blocks over multiple requestors.

:class:`FullNodeRecovery` wraps any single-stripe repair scheme, applies the
scheduling policy per stripe, merges all stripe repairs into one task graph
and reports the recovery rate (recovered bytes / makespan), the metric of
Figures 8(e), 10(b) and 11(b).  The PUSH baselines of section 6.4 (Pipe-Rep
and Pipe-Sur) are the same wrapper around block-level pipelining with a
single-node or round-robin requestor placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.core.planner import RepairScheme
from repro.core.request import RepairRequest, StripeInfo
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.tasks import TaskGraph


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a full-node recovery run.

    Attributes
    ----------
    makespan:
        Seconds until the last lost block is reconstructed.
    recovered_bytes:
        Total size of the reconstructed blocks.
    recovery_rate:
        ``recovered_bytes / makespan`` in bytes/second (Figure 8(e)'s metric).
    num_stripes:
        Number of stripes repaired.
    simulation:
        The underlying simulation result (traffic, port utilisation).
    """

    makespan: float
    recovered_bytes: float
    recovery_rate: float
    num_stripes: int
    simulation: SimulationResult


class FullNodeRecovery:
    """Multi-stripe recovery of all blocks lost by a failed node.

    Parameters
    ----------
    scheme:
        The single-stripe repair scheme applied to each stripe
        (:class:`~repro.core.conventional.ConventionalRepair`,
        :class:`~repro.core.ppr.PPRRepair`,
        :class:`~repro.core.pipelining.RepairPipelining`, ...).
    greedy_scheduling:
        If true, helpers are selected per stripe with the paper's greedy
        least-recently-selected policy; otherwise the lowest-indexed
        available blocks of each stripe are used (the ``RP`` baseline of
        Figure 8(e)).
    """

    def __init__(self, scheme: RepairScheme, greedy_scheduling: bool = True) -> None:
        self.scheme = scheme
        self.greedy_scheduling = greedy_scheduling

    # ----------------------------------------------------------- scheduling
    def _select_helpers(
        self,
        stripe: StripeInfo,
        failed_index: int,
        num_helpers: int,
        last_used: Dict[str, int],
        counter: itertools.count,
    ) -> List[int]:
        """Greedy least-recently-selected helper choice for one stripe."""
        available = [i for i in range(stripe.code.n) if i != failed_index]
        if not self.greedy_scheduling:
            return sorted(available)[:num_helpers]
        ranked = sorted(
            available,
            key=lambda i: (last_used.get(stripe.location(i), -1), stripe.location(i)),
        )
        chosen = ranked[:num_helpers]
        for block_index in chosen:
            last_used[stripe.location(block_index)] = next(counter)
        return chosen

    # ------------------------------------------------------------- building
    def build_requests(
        self,
        stripes: Sequence[StripeInfo],
        failed_node: str,
        requestors: Sequence[str],
        block_size: int,
        slice_size: int,
    ) -> List[RepairRequest]:
        """Create one repair request per stripe that lost a block.

        Reconstructed blocks are assigned to the requestors round-robin, as
        in the paper's evaluation where lost blocks are distributed evenly
        across the requestors.
        """
        if not requestors:
            raise ValueError("at least one requestor is required")
        requests: List[RepairRequest] = []
        requestor_cycle = itertools.cycle(requestors)
        for stripe in stripes:
            lost = stripe.blocks_on_node(failed_node)
            if not lost:
                continue
            if len(lost) > 1:
                raise ValueError(
                    f"stripe {stripe.stripe_id} stores {len(lost)} blocks on "
                    f"{failed_node!r}; stripes must place blocks on distinct nodes"
                )
            requests.append(
                RepairRequest(
                    stripe=stripe,
                    failed=[lost[0]],
                    requestors=next(requestor_cycle),
                    block_size=block_size,
                    slice_size=slice_size,
                )
            )
        if not requests:
            raise ValueError(f"node {failed_node!r} stores no blocks of the given stripes")
        return requests

    def build_graph(
        self,
        requests: Sequence[RepairRequest],
        cluster: Cluster,
    ) -> TaskGraph:
        """Merge the per-stripe repair graphs into one task graph."""
        graph = TaskGraph()
        last_used: Dict[str, int] = {}
        counter = itertools.count()
        for request in requests:
            code = request.stripe.code
            plan = code.repair_plan(request.failed)
            helpers = self._select_helpers(
                request.stripe,
                request.failed[0],
                plan.num_helpers,
                last_used,
                counter,
            )
            self.scheme.build_graph(request, cluster, graph=graph, candidates=helpers)
        return graph

    # ---------------------------------------------------------------- entry
    def run(
        self,
        stripes: Sequence[StripeInfo],
        failed_node: str,
        requestors: Sequence[str],
        block_size: int,
        slice_size: int,
        cluster: Cluster,
    ) -> RecoveryResult:
        """Plan, simulate and summarise the recovery of ``failed_node``."""
        requests = self.build_requests(
            stripes, failed_node, requestors, block_size, slice_size
        )
        graph = self.build_graph(requests, cluster)
        simulation = Simulator(graph).run()
        recovered = float(len(requests) * block_size)
        rate = recovered / simulation.makespan if simulation.makespan > 0 else float("inf")
        return RecoveryResult(
            makespan=simulation.makespan,
            recovered_bytes=recovered,
            recovery_rate=rate,
            num_stripes=len(requests),
            simulation=simulation,
        )
