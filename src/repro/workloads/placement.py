"""Random stripe placement workloads.

The full-node-recovery experiments (sections 6.1 and 6.3) "randomly write
multiple stripes of blocks across all 16 helpers" and then erase one block
per stripe on a chosen node.  :func:`random_stripes` reproduces that
workload: every stripe places its ``n`` blocks on ``n`` distinct nodes chosen
uniformly at random, optionally forcing one block of every stripe onto a
designated node so that failing that node loses exactly one block per stripe.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.codes.base import ErasureCode
from repro.core.request import StripeInfo


def random_stripes(
    code: ErasureCode,
    nodes: Sequence[str],
    num_stripes: int,
    seed: Optional[int] = None,
    pin_node: Optional[str] = None,
) -> List[StripeInfo]:
    """Generate random stripe placements.

    Parameters
    ----------
    code:
        The erasure code of every stripe.
    nodes:
        Candidate storage nodes (must number at least ``n``).
    num_stripes:
        How many stripes to generate.
    seed:
        Seed for reproducible placements.
    pin_node:
        If given, every stripe stores exactly one (randomly chosen) block on
        this node, so that failing it loses one block per stripe -- the
        single-node-failure workload of the recovery experiments.

    Returns
    -------
    list of StripeInfo
        Stripes with ids ``0 .. num_stripes - 1``.
    """
    nodes = list(nodes)
    if len(nodes) < code.n:
        raise ValueError(
            f"need at least n={code.n} nodes for distinct placement, got {len(nodes)}"
        )
    if num_stripes <= 0:
        raise ValueError("num_stripes must be positive")
    if pin_node is not None and pin_node not in nodes:
        raise ValueError(f"pin_node {pin_node!r} is not one of the candidate nodes")

    rng = random.Random(seed)
    stripes: List[StripeInfo] = []
    for stripe_id in range(num_stripes):
        if pin_node is not None:
            others = [n for n in nodes if n != pin_node]
            chosen = rng.sample(others, code.n - 1)
            pinned_index = rng.randrange(code.n)
            chosen.insert(pinned_index, pin_node)
        else:
            chosen = rng.sample(nodes, code.n)
        stripes.append(
            StripeInfo(code, dict(enumerate(chosen)), stripe_id=stripe_id)
        )
    return stripes
