"""The chaos scenario vocabulary: determinism, validation and prediction.

The pinned SHA-256 digests are the determinism contract: a compiled
scenario is pure data derived from ``(scenario, seed)``, so any change to
the fault timelines, the twin degradations or the seed plumbing shows up
here as a digest mismatch and must be deliberate.
"""

import dataclasses

import pytest

from repro.chaos.scenarios import (
    ACTIONS,
    AUTO_REPAIR_LAG,
    COORDINATOR,
    SCENARIOS,
    ChaosConfig,
    FaultEvent,
    calibrate_bandwidth,
    compile_scenario,
    twin_repair_seconds,
)
from repro.cluster import DeploymentSpec
from repro.cluster.deployment import TwinDegradation
from repro.conformance.differ import live_vocabulary_scenarios

#: Canonical-JSON digests of every scenario at seed 7, default config.
#: Pinned: a change here means the compiled fault story changed.  (Most
#: digests moved when the gateway's placement started rotating by
#: ``stripe_id`` -- fault targets now follow the shared
#: ``repro.service.placement.rotated_placement`` instead of the old
#: sorted-helper identity map.)
PINNED_DIGESTS = {
    "kill-coordinator-restart": (
        "531af9a19f800f25d1f7fce6e10babdb7b2a4cefe52ab54f33b834ec59a56ad9"
    ),
    "kill-helper-auto-repair": (
        "c99a6c74ea891223682afccd3f5ad8de6c111c01dce8b5bb289ef5c8f5429a02"
    ),
    "kill-mid-chain": (
        "a9a477c389fb2db1000d3c2a3949cc1b2c00960614173286716a085b6cf11d27"
    ),
    "latency-storm": (
        "eb699279130342ca12a5e124207a5d1a182a4ab264e5cca91432a11aca3ea160"
    ),
    "link-partition": (
        "0b206d6cbd4e0d53b1d625d9e685a0d195421b27722ef34bcd973190203ffb9f"
    ),
    "partition-during-coordinator-restart": (
        "f6bbf31c484464b0661fb9bd75cc6f0f279fc9426df4db1c2e38874c5d0d92f0"
    ),
    "slow-helper": (
        "7427b11d019a7424055697619989d27286b36293208b6be5a36d9cce4fe295ad"
    ),
}


class TestDeterminism:
    def test_registry_matches_pins(self):
        assert sorted(SCENARIOS) == sorted(PINNED_DIGESTS)

    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_pinned_digest(self, name):
        compiled = compile_scenario(name, ChaosConfig(), 7)
        assert compiled.digest() == PINNED_DIGESTS[name]

    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_compile_twice_identical(self, name):
        config = ChaosConfig()
        assert (
            compile_scenario(name, config, 7).to_dict()
            == compile_scenario(name, config, 7).to_dict()
        )

    def test_seed_changes_the_draw(self):
        config = ChaosConfig()
        digests = {
            compile_scenario("kill-mid-chain", config, seed).digest()
            for seed in range(20)
        }
        assert len(digests) > 1  # the target/knob draw actually uses the seed

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            compile_scenario("split-brain", ChaosConfig(), 7)


class TestCompiledShape:
    def test_kill_mid_chain_targets_a_data_hop(self):
        config = ChaosConfig()
        compiled = compile_scenario("kill-mid-chain", config, 7)
        helpers = sorted(config.spec.helpers)
        # With greedy=False the block-0 chain is node1->node2->node3; only
        # hops 2..k carry slice traffic on their ingress.
        data_hops = set(helpers[2 : config.k + 1])
        targets = {e.target for e in compiled.events}
        assert targets <= data_hops
        assert compiled.exclude == tuple(targets)
        assert compiled.lost_blocks == tuple(
            config.node_block(t) for t in targets
        )
        assert [e.action for e in compiled.events] == [
            "rate",
            "kill",
            "restart",
            "heal",
        ]

    def test_link_partition_never_targets_block0_holder(self):
        # Block 0 is the erased repair workload, so the partitioned node
        # must never be its holder -- under the gateway's rotated placement,
        # not necessarily the first sorted helper.
        config = ChaosConfig()
        block0_node = config.placement()[0]
        for seed in range(30):
            compiled = compile_scenario("link-partition", config, seed)
            assert all(e.target != block0_node for e in compiled.events)

    def test_coordinator_scenario_does_not_expect_serving(self):
        compiled = compile_scenario("kill-coordinator-restart", ChaosConfig(), 7)
        assert not compiled.expect_serving
        assert all(e.target == COORDINATOR for e in compiled.events)

    def test_auto_repair_scenario_shape(self):
        config = ChaosConfig()
        compiled = compile_scenario("kill-helper-auto-repair", config, 7)
        assert compiled.auto_repair
        assert compiled.recovery == "host"
        # Kill-then-restart of one chain helper, nothing else: the whole
        # point is that no client repair accompanies the timeline.
        assert [e.action for e in compiled.events] == ["kill", "restart"]
        (target,) = {e.target for e in compiled.events}
        assert target in config.spec.helpers
        assert compiled.lost_blocks == (config.node_block(target),)
        assert compiled.exclude == (target,)

    def test_store_recovery_scenario_shape(self):
        config = ChaosConfig()
        compiled = compile_scenario(
            "partition-during-coordinator-restart", config, 7
        )
        assert compiled.recovery == "store"
        assert not compiled.auto_repair
        assert not compiled.expect_serving
        actions = [(e.action, e.target) for e in compiled.events]
        assert ("kill", COORDINATOR) in actions
        assert ("restart", COORDINATOR) in actions
        helper_targets = {t for a, t in actions if t != COORDINATOR}
        assert len(helper_targets) == 1
        assert sorted(config.spec.helpers)[0] not in helper_targets

    def test_recovery_mode_is_validated(self):
        compiled = compile_scenario("kill-mid-chain", ChaosConfig(), 7)
        with pytest.raises(ValueError, match="recovery"):
            dataclasses.replace(compiled, recovery="santa")

    def test_time_scale_stretches_the_timeline(self):
        base = compile_scenario("kill-mid-chain", ChaosConfig(), 7)
        slow = compile_scenario("kill-mid-chain", ChaosConfig(time_scale=3.0), 7)
        assert slow.horizon == pytest.approx(3.0 * base.horizon)

    def test_no_scenario_uses_blackhole(self):
        # A blackhole wedges peers until their 120 s protocol timeouts;
        # the live vocabulary deliberately sticks to fast-failing faults.
        for name in SCENARIOS:
            compiled = compile_scenario(name, ChaosConfig(), 7)
            assert all(e.action != "blackhole" for e in compiled.events)
            assert all(e.action in ACTIONS for e in compiled.events)


class TestValidation:
    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-0.1, "kill", "node1")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "explode", "node1")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "delay", "node1")  # needs a positive value
        with pytest.raises(ValueError):
            FaultEvent(0.0, "rate", "node1", 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(n=3, k=3)
        with pytest.raises(ValueError):
            ChaosConfig(slice_size=2 << 20)  # exceeds block_size
        with pytest.raises(ValueError):
            ChaosConfig(time_scale=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(baseline_repeats=0)
        with pytest.raises(ValueError, match="helpers"):
            ChaosConfig(n=5, k=3, spec=DeploymentSpec.local(4))

    def test_degradation_validation(self):
        with pytest.raises(ValueError):
            TwinDegradation(node_bandwidth={"node1": 0.0})
        with pytest.raises(ValueError):
            TwinDegradation(extra_transfer_overhead=-1.0)


class TestPrediction:
    def test_calibration_reproduces_the_baseline(self):
        config = ChaosConfig()
        baseline = 0.02
        bandwidth = calibrate_bandwidth(config, baseline)
        assert twin_repair_seconds(config, bandwidth) == pytest.approx(
            baseline, rel=0.05
        )

    def test_calibration_rejects_nonpositive_baseline(self):
        with pytest.raises(ValueError):
            calibrate_bandwidth(ChaosConfig(), 0.0)

    def test_degraded_twin_is_slower(self):
        config = ChaosConfig()
        bandwidth = calibrate_bandwidth(config, 0.02)
        healthy = twin_repair_seconds(config, bandwidth)
        slow = twin_repair_seconds(
            config,
            bandwidth,
            TwinDegradation(node_bandwidth={"node3": bandwidth / 10}),
        )
        assert slow > healthy

    def test_anchors_override_scripted_times(self):
        config = ChaosConfig()
        scenario = SCENARIOS["kill-mid-chain"]
        compiled = scenario.compile(config, 7)
        bandwidth = calibrate_bandwidth(config, 0.02)
        target = compiled.exclude[0]
        scripted = scenario.predict_seconds(compiled, config, bandwidth)
        anchored = scenario.predict_seconds(
            compiled, config, bandwidth, anchors={("restart", target): 2.0}
        )
        # A real process restart measured at 2 s dominates the scripted
        # 0.45 s: the prediction must follow the observation.
        assert anchored > scripted
        assert anchored == pytest.approx(
            2.0 + twin_repair_seconds(config, bandwidth)
        )

    def test_empty_anchors_fall_back_to_script(self):
        config = ChaosConfig()
        scenario = SCENARIOS["link-partition"]
        compiled = scenario.compile(config, 7)
        bandwidth = calibrate_bandwidth(config, 0.02)
        assert scenario.predict_seconds(
            compiled, config, bandwidth, anchors={}
        ) == scenario.predict_seconds(compiled, config, bandwidth)

    def test_auto_repair_prediction_includes_the_detection_lag(self):
        config = ChaosConfig()
        scenario = SCENARIOS["kill-helper-auto-repair"]
        compiled = scenario.compile(config, 7)
        bandwidth = calibrate_bandwidth(config, 0.02)
        (target,) = compiled.exclude
        anchored = scenario.predict_seconds(
            compiled, config, bandwidth, anchors={("restart", target): 1.5}
        )
        # Restart anchor, then beat + grace + scan before the scanner can
        # even dispatch, then the repair itself.
        assert anchored == pytest.approx(
            1.5 + AUTO_REPAIR_LAG + twin_repair_seconds(config, bandwidth)
        )

    def test_store_recovery_prediction_waits_for_the_heal(self):
        config = ChaosConfig()
        scenario = SCENARIOS["partition-during-coordinator-restart"]
        compiled = scenario.compile(config, 7)
        bandwidth = calibrate_bandwidth(config, 0.02)
        (target,) = compiled.exclude
        # A late heal dominates a prompt restart...
        late_heal = scenario.predict_seconds(
            compiled,
            config,
            bandwidth,
            anchors={("restart", COORDINATOR): 0.1, ("heal", target): 5.0},
        )
        assert late_heal == pytest.approx(5.0)
        # ...and a late restart dominates a prompt heal.
        late_restart = scenario.predict_seconds(
            compiled,
            config,
            bandwidth,
            anchors={("restart", COORDINATOR): 5.0, ("heal", target): 0.1},
        )
        assert late_restart == pytest.approx(
            5.0 + twin_repair_seconds(config, bandwidth)
        )

    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_every_prediction_is_positive(self, name):
        config = ChaosConfig()
        compiled = compile_scenario(name, config, 7)
        bandwidth = calibrate_bandwidth(config, 0.02)
        assert SCENARIOS[name].predict_seconds(compiled, config, bandwidth) > 0


class TestDifferBridge:
    def test_one_runtime_scenario_per_live_scenario(self):
        scenarios = live_vocabulary_scenarios()
        assert sorted(s.name for s in scenarios) == sorted(
            f"live-{name}" for name in SCENARIOS
        )

    def test_axes_are_applied(self):
        by_name = {s.name: s for s in live_vocabulary_scenarios()}
        assert by_name["live-slow-helper"].repair_bandwidth_cap == 20e6
        assert by_name["live-latency-storm"].read_distribution == "zipf"
        assert by_name["live-kill-mid-chain"].transient_fraction == 0.0
        assert by_name["live-link-partition"].transient_fraction == 1.0
        assert by_name["live-kill-coordinator-restart"].detection_delay == 600.0
        # Self-healing is the *short* detection delay axis.
        assert by_name["live-kill-helper-auto-repair"].detection_delay == 30.0
        assert (
            by_name["live-partition-during-coordinator-restart"].transient_fraction
            == 1.0
        )

    def test_bridge_scenarios_share_the_live_shape(self):
        config = ChaosConfig()
        for scenario in live_vocabulary_scenarios():
            assert scenario.code == ("rs", config.n, config.k)
            assert scenario.scheme == config.scheme
            assert scenario.block_size == config.block_size
