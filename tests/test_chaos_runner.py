"""End-to-end chaos runs, in-process, for every scenario in the vocabulary.

Each test boots a real deployment (coordinator, helpers and gateway on
localhost TCP), interposes the fault proxies, replays the scenario's
timeline and asserts the harness's full contract: byte-identical post-repair
data, foreground reads surviving the window, and a measured/predicted
makespan ratio inside the committed band.  Process-mode runs (OS processes,
SIGKILL/SIGSTOP) live in the CI ``chaos-smoke`` job; in-process runs cover
the identical code paths minus the interpreter spawn.
"""

import asyncio
import json
import math

import pytest

from repro.chaos import ChaosConfig, ChaosReport, ChaosRunner, compile_scenario
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.runner import default_bands_path, load_bands, run_scenario
from repro.chaos.scenarios import SCENARIOS

#: Small blocks and a compressed timeline keep each live run ~1 s.
FAST = dict(block_size=256 * 1024, slice_size=32 * 1024, time_scale=0.5)


def run(coro):
    return asyncio.run(coro)


def fast_config(**overrides):
    return ChaosConfig(**{**FAST, **overrides})


class TestCommittedBands:
    def test_bands_file_covers_the_vocabulary(self):
        bands = load_bands()
        assert sorted(bands) == sorted(SCENARIOS)
        for low, high in bands.values():
            assert 0 < low < 1 <= high

    def test_default_path_is_at_the_repo_root(self):
        path = default_bands_path()
        assert path.name == "BENCH_chaos.json"
        assert path.exists()
        assert (path.parent / "BENCH_engine.json").exists()


class TestLiveScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_end_to_end(self, name):
        report = run(run_scenario(name, seed=7, config=fast_config(), mode="inproc"))
        assert report.integrity_ok, report.integrity_detail
        assert report.served_ok
        assert report.calibration_ok, (
            f"{name}: ratio {report.ratio:.2f} outside band {report.band}"
        )
        assert report.ok
        assert report.events_applied == len(
            compile_scenario(name, fast_config(), 7).events
        )
        assert report.measured_seconds > 0
        assert report.predicted_seconds > 0

    def test_divergence_fails_the_run(self):
        # Same live run, absurd committed band: the diff must fail loudly.
        report = run(
            run_scenario(
                "slow-helper",
                seed=7,
                config=fast_config(),
                mode="inproc",
                bands={"slow-helper": (1e-9, 1e-8)},
            )
        )
        assert report.integrity_ok
        assert not report.calibration_ok
        assert not report.ok

    def test_runner_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ChaosRunner(fast_config(), mode="container")


class TestReport:
    def _report(self, **overrides):
        fields = dict(
            scenario="slow-helper",
            seed=7,
            mode="inproc",
            baseline_seconds=0.02,
            measured_seconds=0.3,
            predicted_seconds=0.25,
            calibrated_bandwidth=5e7,
            band=(0.2, 5.0),
            integrity_ok=True,
            integrity_detail="object + 5 blocks byte-identical",
            served_ok=True,
            load={"operations": 4, "errors": 0, "degraded_reads": 1},
            events_applied=1,
            expect_serving=True,
        )
        fields.update(overrides)
        return ChaosReport(**fields)

    def test_ratio_and_band(self):
        report = self._report()
        assert report.ratio == pytest.approx(1.2)
        assert report.calibration_ok and report.ok

    def test_zero_prediction_is_infinite_ratio(self):
        report = self._report(predicted_seconds=0.0)
        assert math.isinf(report.ratio)
        assert not report.ok

    def test_any_leg_failing_fails_the_report(self):
        assert not self._report(integrity_ok=False).ok
        assert not self._report(served_ok=False).ok
        assert not self._report(measured_seconds=10.0).ok

    def test_round_trip_and_render(self):
        report = self._report()
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] and data["ratio"] == pytest.approx(1.2)
        text = report.render()
        assert "OK" in text and "slow-helper" in text
        failed = self._report(measured_seconds=10.0).render()
        assert "calibration diverged" in failed


class TestCli:
    def test_list_command(self, capsys):
        assert chaos_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_command_json(self, capsys):
        code = chaos_main(
            [
                "run",
                "--scenario",
                "slow-helper",
                "--seed",
                "7",
                "--mode",
                "inproc",
                "--block-size",
                str(FAST["block_size"]),
                "--slice-size",
                str(FAST["slice_size"]),
                "--time-scale",
                str(FAST["time_scale"]),
                "--json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["ok"] and data["scenario"] == "slow-helper"
