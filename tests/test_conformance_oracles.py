"""Property tests tying ``analysis.timeslots`` to the simulator.

For random ``(n, k, s, f)`` within the supported ranges, a homogeneous
single-stripe repair's simulated makespan must match the paper's closed-form
timeslot count: *exactly* (to float accumulation) for conventional repair
and repair pipelining once the calibrated overhead terms are added back
(:mod:`repro.conformance.oracles` spells them out), and within the analytic
envelope for PPR.  Both engines are held to the formulas, and the oracle
layer's structural invariants ride along via ``check_single_repair``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    conventional_timeslots,
    repair_pipelining_timeslots,
    scheme_timeslots,
    timeslot_seconds,
)
from repro.cluster import KiB, MiB, build_flat_cluster
from repro.codes import RSCode
from repro.conformance.oracles import (
    check_single_repair,
    expected_conventional_seconds,
    expected_rp_seconds,
    ppr_envelope_seconds,
)
from repro.core import (
    ConventionalRepair,
    PPRRepair,
    RepairPipelining,
    RepairRequest,
    StripeInfo,
)


def _request(n, k, f, block_size, slice_size):
    cluster = build_flat_cluster(n + f + 1)
    stripe = StripeInfo(RSCode(n, k), {i: f"node{i}" for i in range(n)})
    requestors = tuple(f"node{n + i}" for i in range(f))
    request = RepairRequest(
        stripe,
        list(range(f)),
        requestors if f > 1 else requestors[0],
        block_size,
        slice_size,
    )
    return request, cluster


#: Supported random ranges: k within the paper's code families, f within RS
#: fault tolerance, slice sizes producing 2..64 slices (incl. a remainder).
PARAMS = dict(
    k=st.integers(min_value=2, max_value=12),
    extra=st.integers(min_value=2, max_value=4),
    f=st.integers(min_value=1, max_value=3),
    block_mib=st.sampled_from([1, 2, 4]),
    slice_kib=st.sampled_from([32, 64, 128, 256, 333]),
)


@settings(max_examples=25, deadline=None)
@given(**PARAMS)
def test_conventional_matches_closed_form_exactly(k, extra, f, block_mib, slice_kib):
    n = k + extra
    f = min(f, n - k)
    request, cluster = _request(n, k, f, block_mib * MiB, slice_kib * KiB)
    expected = expected_conventional_seconds(request, cluster.spec)
    for reference in (False, True):
        result = ConventionalRepair().repair_time(request, cluster, reference=reference)
        assert result.makespan == pytest.approx(expected, rel=1e-9)
    # The dominant term is the paper's k + f - 1 timeslots: the slot count
    # in seconds is a hard floor, and the calibrated overhead terms (block
    # read, decode, k*s per-transfer costs) stay within 30% of it across
    # the supported ranges.
    slot = timeslot_seconds(request.block_size, cluster.spec.network_bandwidth)
    slots = conventional_timeslots(k, f)
    assert slots == scheme_timeslots("conventional", k, request.num_slices, f)
    assert slots * slot * (1.0 - 1e-9) <= result.makespan <= slots * slot * 1.3


@settings(max_examples=25, deadline=None)
@given(**PARAMS)
def test_rp_matches_closed_form_exactly(k, extra, f, block_mib, slice_kib):
    n = k + extra
    f = min(f, n - k)
    request, cluster = _request(n, k, f, block_mib * MiB, slice_kib * KiB)
    expected = expected_rp_seconds(request, cluster.spec)
    for reference in (False, True):
        result = RepairPipelining("rp").repair_time(request, cluster, reference=reference)
        assert result.makespan == pytest.approx(expected, rel=1e-9)
    # Network term == the paper's f * (1 + (k - 1)/s) timeslots: a hard
    # floor, with the fill-stage disk/CPU/overhead terms within 30%.
    slot = timeslot_seconds(request.block_size, cluster.spec.network_bandwidth)
    slots = repair_pipelining_timeslots(k, request.num_slices, f)
    assert slots == scheme_timeslots("rp", k, request.num_slices, f)
    assert slots * slot * (1.0 - 1e-9) <= result.makespan <= slots * slot * 1.3


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=12),
    extra=st.integers(min_value=2, max_value=4),
    block_mib=st.sampled_from([1, 2, 4]),
    slice_kib=st.sampled_from([32, 64, 128, 333]),
)
def test_ppr_within_analytic_envelope(k, extra, block_mib, slice_kib):
    request, cluster = _request(k + extra, k, 1, block_mib * MiB, slice_kib * KiB)
    lower, upper = ppr_envelope_seconds(request, cluster.spec)
    for reference in (False, True):
        result = PPRRepair().repair_time(request, cluster, reference=reference)
        # Tolerances absorb float accumulation when the simulated chain
        # lands exactly on an envelope edge (it does for k = 2).
        assert lower * (1.0 - 1e-9) <= result.makespan <= upper * (1.0 + 1e-9)


@settings(max_examples=15, deadline=None)
@given(**PARAMS)
def test_check_single_repair_holds_over_random_geometry(
    k, extra, f, block_mib, slice_kib
):
    n = k + extra
    f = min(f, n - k)
    request, cluster = _request(n, k, f, block_mib * MiB, slice_kib * KiB)
    report = check_single_repair(request, cluster)
    assert report.ok, report.render()


class TestOraclePreconditions:
    def test_colocated_helpers_rejected(self):
        cluster = build_flat_cluster(6)
        stripe = StripeInfo(RSCode(6, 4), {i: f"node{i % 3}" for i in range(6)})
        request = RepairRequest(stripe, [0], "node4", MiB, 64 * KiB)
        with pytest.raises(ValueError, match="distinct nodes"):
            expected_conventional_seconds(request, cluster.spec)

    def test_requestor_on_helper_node_rejected(self):
        cluster = build_flat_cluster(10)
        stripe = StripeInfo(RSCode(6, 4), {i: f"node{i}" for i in range(6)})
        request = RepairRequest(stripe, [0], "node1", MiB, 64 * KiB)
        with pytest.raises(ValueError, match="off the helper nodes"):
            expected_rp_seconds(request, cluster.spec)

    def test_scheme_timeslots_dispatch(self):
        assert scheme_timeslots("ppr", 10, 8) == 4.0
        assert scheme_timeslots("pipe_b", 10, 8, 2) == 20.0
        assert scheme_timeslots("pipe_s", 10, 8) == scheme_timeslots("rp", 10, 8)
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_timeslots("nonsense", 10, 8)
        with pytest.raises(ValueError, match="single-block"):
            scheme_timeslots("ppr", 10, 8, 2)

    def test_envelope_orders_bounds(self):
        request, cluster = _request(9, 6, 1, MiB, 64 * KiB)
        lower, upper = ppr_envelope_seconds(request, cluster.spec)
        assert 0 < lower < upper
