"""Supervision edges of :class:`repro.service.deployment.LocalDeployment`.

The happy paths (boot, serve, graceful stop) live in ``test_service.py``;
this file covers what the chaos harness leans on: the fault hooks
(crash/pause/resume/restart in both modes), idempotent teardown, recovery
after a role dies during boot, and state-file rehydration with corrupt or
stale JSON.
"""

import asyncio
import json
import os
import stat
import sys

import pytest

from repro.cluster import DeploymentSpec
from repro.service import LocalDeployment, ServiceClient
from repro.service.deployment import RoleHandle, ServiceError, pid_alive
from repro.service.protocol import Op, request


def run(coro):
    return asyncio.run(coro)


def spec(num_helpers=2):
    return DeploymentSpec.local(num_helpers)


# ------------------------------------------------------------ in-process hooks
class TestInProcessFaultHooks:
    def test_crash_then_restart_serves_again(self):
        async def scenario():
            deployment = LocalDeployment(spec=spec())
            await deployment.start()
            try:
                node = sorted(deployment.helper_addresses())[0]
                handle = await deployment.crash_role("helper", node)
                # An aborted server refuses its old address...
                with pytest.raises((ConnectionError, OSError)):
                    await request(handle.host, handle.port, Op.PING, {})
                # ...and restart_role brings it back on that same port.
                restarted = await deployment.restart_role("helper", node)
                assert restarted.address == handle.address
                reply = await request(handle.host, handle.port, Op.PING, {})
                assert reply.op == Op.OK
            finally:
                await deployment.stop()

        run(scenario())

    def test_restart_of_a_live_role_is_refused(self):
        async def scenario():
            deployment = LocalDeployment(spec=spec())
            await deployment.start()
            try:
                # In-process handles have no pid, so alive() is False and the
                # guard cannot apply; crash the gateway and restart it twice
                # instead: the second restart must succeed too (idempotent
                # recovery), while a *process* deployment's guard is covered
                # in the process-mode test below.
                await deployment.crash_role("gateway")
                first = await deployment.restart_role("gateway")
                await deployment.crash_role("gateway")
                second = await deployment.restart_role("gateway")
                assert first.address == second.address
            finally:
                await deployment.stop()

        run(scenario())

    def test_pause_resume_require_processes(self):
        async def scenario():
            deployment = LocalDeployment(spec=spec())
            await deployment.start()
            try:
                with pytest.raises(ServiceError, match="process"):
                    deployment.pause_role("coordinator")
                with pytest.raises(ServiceError, match="process"):
                    deployment.resume_role("coordinator")
            finally:
                await deployment.stop()

        run(scenario())

    def test_unknown_role_raises_keyerror(self):
        async def scenario():
            deployment = LocalDeployment(spec=spec())
            await deployment.start()
            try:
                with pytest.raises(KeyError):
                    await deployment.crash_role("helper", "not-a-node")
            finally:
                await deployment.stop()

        run(scenario())

    def test_crashed_helper_loses_its_blocks(self):
        async def scenario():
            deployment = LocalDeployment(spec=spec(3))
            await deployment.start()
            try:
                client = ServiceClient(deployment.gateway_address)
                payload = bytes(range(256)) * 64
                await client.put(1, payload, {"family": "rs", "n": 3, "k": 2})
                node = sorted(deployment.helper_addresses())[0]
                await deployment.crash_role("helper", node)
                await deployment.restart_role("helper", node)
                address = deployment.helper_addresses()[node]
                probe = await request(
                    *address, Op.HAS_BLOCK, {"key": "stripe1.block0"}
                )
                assert not probe.header.get("present")  # real machine loss
            finally:
                await deployment.stop()

        run(scenario())


# ------------------------------------------------------------- process mode
class TestProcessSupervision:
    def test_full_fault_cycle_and_idempotent_down(self):
        deployment = LocalDeployment(spec=spec())
        deployment.up()
        try:
            node = sorted(deployment.helper_addresses())[0]
            handle = deployment.handle("helper", node)
            assert handle.alive()

            # SIGSTOP leaves the process alive but wedged; SIGCONT revives.
            deployment.pause_role("helper", node)
            assert handle.alive()
            deployment.resume_role("helper", node)
            assert run(request(handle.host, handle.port, Op.PING, {})).op == Op.OK

            # restart_role refuses while the role lives; kill -9 then works.
            with pytest.raises(ServiceError, match="still alive"):
                run(deployment.restart_role("helper", node))
            run(deployment.crash_role("helper", node))
            assert not handle.alive()
            restarted = run(deployment.restart_role("helper", node))
            assert restarted.address == handle.address
            assert restarted.pid != handle.pid
            assert restarted.alive()
        finally:
            report = deployment.down()
        assert deployment.orphans() == []
        assert not deployment.handles
        # down() again on an empty deployment is a no-op, not an error.
        second = deployment.down()
        assert second == {"graceful": [], "sigterm": [], "sigkill": []}
        assert report["sigkill"] == []

    def test_up_recovers_after_a_role_dies_during_boot(self, tmp_path):
        # A fake interpreter that boots real roles except helpers, which it
        # kills instantly: the helper dies during boot, before reporting an
        # address.
        fake = tmp_path / "flaky-python"
        fake.write_text(
            "#!/bin/sh\n"
            'for arg in "$@"; do [ "$arg" = "--node" ] && exit 1; done\n'
            f'exec "{sys.executable}" "$@"\n'
        )
        fake.chmod(fake.stat().st_mode | stat.S_IXUSR)

        deployment = LocalDeployment(spec=spec())
        with pytest.raises(ServiceError, match="failed to report"):
            deployment.up(python=str(fake))
        # The partial boot was torn down: nothing left alive or registered.
        assert deployment.handles == []
        assert deployment.orphans() == []

        # The same object boots cleanly afterwards.
        deployment.up()
        try:
            handle = deployment.handle("gateway")
            assert run(request(handle.host, handle.port, Op.PING, {})).op == Op.OK
        finally:
            deployment.down()
        assert deployment.orphans() == []


# -------------------------------------------------------------- state files
class TestStateFile:
    def test_round_trip(self, tmp_path):
        deployment = LocalDeployment(spec=spec())
        deployment.handles = [
            RoleHandle("coordinator", "", "127.0.0.1", 4000, pid=None)
        ]
        path = deployment.save_state(str(tmp_path / "state.json"))
        loaded = LocalDeployment.load_state(path)
        assert loaded.spec.helpers == deployment.spec.helpers
        assert loaded.handles[0].address == ("127.0.0.1", 4000)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ServiceError, match="is it up"):
            LocalDeployment.load_state(str(tmp_path / "absent.json"))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{not json at all")
        with pytest.raises(ServiceError, match="corrupt"):
            LocalDeployment.load_state(str(path))

    @pytest.mark.parametrize(
        "state",
        [
            {},  # no keys at all
            {"spec": {}, "handles": []},  # spec missing fields
            {"spec": None, "handles": []},  # wrong types
            {"spec": {"helpers": ["a"], "host": "h"}, "handles": [{"role": "x"}]},
        ],
        ids=["empty", "spec-empty", "spec-null", "handle-missing-fields"],
    )
    def test_stale_or_malformed_state(self, tmp_path, state):
        path = tmp_path / "state.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ServiceError, match="stale or malformed"):
            LocalDeployment.load_state(str(path))

    def test_rehydrated_pids_probe_liveness(self, tmp_path):
        # A rehydrated handle has no Popen; alive() falls back to signal-0.
        dead = RoleHandle("helper", "n", "127.0.0.1", 4001, pid=2**22 + 12345)
        assert not dead.alive()
        assert not pid_alive(dead.pid)
        ours = RoleHandle("helper", "n", "127.0.0.1", 4001, pid=os.getpid())
        assert ours.alive()
