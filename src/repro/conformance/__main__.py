"""CLI: ``python -m repro.conformance``.

Runs the chaos differential matrix (optimized vs reference engine on
identical seeds) plus the analytical report oracles, streams one line per
trial, and exits non-zero on any conformance failure.  CI runs this as the
required ``conformance`` job; locally::

    PYTHONPATH=src python -m repro.conformance --scenarios 20
    PYTHONPATH=src python -m repro.conformance --scenarios 5 --days 0.25 -v
    PYTHONPATH=src python -m repro.conformance --list

Environment knobs mirror the flags for CI convenience:
``REPRO_CONFORMANCE_SCENARIOS``, ``REPRO_CONFORMANCE_TRIALS``,
``REPRO_CONFORMANCE_ROOT_SEED`` (flags win).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import env_positive_int
from repro.conformance.differ import (
    CHAOS_ROOT_SEED,
    chaos_scenarios,
    live_vocabulary_scenarios,
    run_differential_matrix,
)


def _env_default(name: str, fallback: int) -> int:
    """The harness's validated env reader, exiting cleanly on bad input."""
    try:
        return env_positive_int(name, fallback)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description=(
            "Differential conformance: run randomized chaos scenarios on the "
            "optimized and the reference engine with identical seeds and "
            "diff the reports field by field."
        ),
    )
    parser.add_argument(
        "--scenarios",
        type=int,
        default=_env_default("REPRO_CONFORMANCE_SCENARIOS", 20),
        help="number of chaos scenarios to draw (default 20)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=_env_default("REPRO_CONFORMANCE_TRIALS", 1),
        help="trials per scenario (default 1)",
    )
    parser.add_argument(
        "--root-seed",
        type=int,
        default=_env_default("REPRO_CONFORMANCE_ROOT_SEED", CHAOS_ROOT_SEED),
        help=f"root seed of the chaos draw (default {CHAOS_ROOT_SEED})",
    )
    parser.add_argument(
        "--days", type=float, default=None, help="override the simulated horizon"
    )
    parser.add_argument(
        "--stripes", type=int, default=None, help="override the stripe population"
    )
    parser.add_argument(
        "--no-oracles",
        action="store_true",
        help="skip the analytical report oracles (engine diff only)",
    )
    parser.add_argument(
        "--vocab",
        action="store_true",
        help=(
            "append the live chaos-harness vocabulary (repro.chaos) to the "
            "matrix: one scenario per live fault script, on the axes the "
            "live run stresses"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the drawn scenario matrix and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print every trial, not just failures"
    )
    args = parser.parse_args(argv)
    if args.scenarios <= 0 or args.trials <= 0:
        parser.error("--scenarios and --trials must be positive")

    scenarios = chaos_scenarios(
        args.scenarios,
        root_seed=args.root_seed,
        days=args.days,
        num_stripes=args.stripes,
    )
    if args.vocab:
        scenarios = scenarios + live_vocabulary_scenarios(
            days=args.days if args.days is not None else 0.5,
            num_stripes=args.stripes if args.stripes is not None else 12,
        )
    if args.list:
        for scenario in scenarios:
            print(
                f"{scenario.name}: code={scenario.code} {scenario.topology} "
                f"nodes={scenario.num_nodes} scheme={scenario.scheme} "
                f"failures={scenario.failure_model} "
                f"cap={scenario.repair_bandwidth_cap} "
                f"fg={scenario.foreground_rate}/{scenario.read_distribution} "
                f"days={scenario.days}"
            )
        return 0

    print(
        f"differential conformance: {len(scenarios)} chaos scenarios x "
        f"{args.trials} trial(s), root seed {args.root_seed}"
    )
    report = run_differential_matrix(
        scenarios,
        trials=args.trials,
        root_seed=args.root_seed,
        check_oracles=not args.no_oracles,
        progress=lambda diff: print(diff.render(), flush=True)
        if args.verbose or not diff.ok
        else None,
    )
    print(report.render(verbose=False).splitlines()[-1])
    if not report.ok:
        print(
            f"CONFORMANCE FAILURE: {len(report.failures)} of "
            f"{len(report.trials)} trials diverged or violated an oracle",
            file=sys.stderr,
        )
        return 1
    print("conformance OK: engines byte-identical, oracles satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
