"""Cluster health state.

:class:`ClusterState` is the runtime's view of what is currently broken:
which blocks are unreadable (and whether the outage is transient or
permanent), which nodes are down, and which stripes have already lost data.
It is pure bookkeeping -- the :class:`repro.runtime.runtime.ClusterRuntime`
event loop mutates it as failures arrive and repairs complete, and the
repair queue and degraded-read paths consult it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.request import StripeInfo

#: Failure kinds tracked per block.
TRANSIENT = "transient"
PERMANENT = "permanent"


@dataclass
class BlockFailure:
    """One currently-unreadable block.

    ``token`` disambiguates overlapping outages of the same block: a
    scheduled transient restore only heals the block if the failure it was
    scheduled for is still the current one (the outage may have been
    upgraded to a permanent failure in the meantime).
    """

    kind: str
    time: float
    token: int


class ClusterState:
    """Health bookkeeping for a running cluster.

    Parameters
    ----------
    stripes:
        Every stripe under management; fault tolerance and placement are read
        from these (placement may be relocated by repairs as the run
        progresses).
    nodes:
        All node names of the cluster.
    """

    def __init__(self, stripes: Iterable[StripeInfo], nodes: Iterable[str]) -> None:
        self.stripes: Dict[int, StripeInfo] = {s.stripe_id: s for s in stripes}
        self.nodes: List[str] = list(nodes)
        self._dead_nodes: Set[str] = set()
        self._failed: Dict[Tuple[int, int], BlockFailure] = {}
        self._failed_by_stripe: Dict[int, Set[int]] = {}
        self._lost_stripes: Set[int] = set()
        self._tokens = itertools.count()

    # ----------------------------------------------------------------- nodes
    def kill_node(self, node: str) -> None:
        """Mark a node as dead (permanent failure, pending replacement)."""
        self._dead_nodes.add(node)

    def revive_node(self, node: str) -> None:
        """Bring a replacement node online under the failed node's name."""
        self._dead_nodes.discard(node)

    def is_node_alive(self, node: str) -> bool:
        """Whether a node is currently up."""
        return node not in self._dead_nodes

    def dead_nodes(self) -> List[str]:
        """Currently dead nodes (sorted for determinism)."""
        return sorted(self._dead_nodes)

    def live_nodes(self) -> List[str]:
        """Currently live nodes in cluster order."""
        return [n for n in self.nodes if n not in self._dead_nodes]

    # ---------------------------------------------------------------- blocks
    def fail_block(self, stripe_id: int, block_index: int, kind: str, time: float) -> int:
        """Mark a block unreadable; returns the failure token.

        Upgrading a transient outage to a permanent one replaces the record
        (invalidating any scheduled restore); the reverse never happens.
        """
        if kind not in (TRANSIENT, PERMANENT):
            raise ValueError(f"unknown failure kind {kind!r}")
        key = (stripe_id, block_index)
        existing = self._failed.get(key)
        if existing is not None and existing.kind == PERMANENT:
            return existing.token
        token = next(self._tokens)
        self._failed[key] = BlockFailure(kind, time, token)
        self._failed_by_stripe.setdefault(stripe_id, set()).add(block_index)
        return token

    def heal_block(self, stripe_id: int, block_index: int, token: Optional[int] = None) -> bool:
        """Mark a block readable again.

        With a ``token``, the heal only applies if the current failure still
        carries that token (a transient restore racing a node death must not
        resurrect permanently lost data).  Returns whether the block healed.
        """
        key = (stripe_id, block_index)
        failure = self._failed.get(key)
        if failure is None:
            return False
        if token is not None and failure.token != token:
            return False
        del self._failed[key]
        remaining = self._failed_by_stripe[stripe_id]
        remaining.discard(block_index)
        if not remaining:
            del self._failed_by_stripe[stripe_id]
        return True

    def block_failure(self, stripe_id: int, block_index: int) -> Optional[BlockFailure]:
        """The current failure record of a block, or ``None`` if readable."""
        return self._failed.get((stripe_id, block_index))

    def is_block_available(self, stripe_id: int, block_index: int) -> bool:
        """Whether a block can be read right now."""
        return (stripe_id, block_index) not in self._failed

    def failed_blocks(self, stripe_id: int) -> List[int]:
        """Sorted indices of the stripe's currently-unreadable blocks."""
        return sorted(self._failed_by_stripe.get(stripe_id, ()))

    def permanently_failed_blocks(self, stripe_id: int) -> List[int]:
        """Sorted indices of the stripe's permanently lost blocks."""
        return sorted(
            i
            for i in self._failed_by_stripe.get(stripe_id, ())
            if self._failed[(stripe_id, i)].kind == PERMANENT
        )

    def failed_count(self, stripe_id: int) -> int:
        """Number of currently-unreadable blocks of a stripe."""
        return len(self._failed_by_stripe.get(stripe_id, ()))

    # ------------------------------------------------------------- data loss
    def mark_lost(self, stripe_id: int) -> None:
        """Record that a stripe has exceeded its fault tolerance."""
        self._lost_stripes.add(stripe_id)

    def is_lost(self, stripe_id: int) -> bool:
        """Whether a stripe has lost data."""
        return stripe_id in self._lost_stripes

    def at_risk(self, stripe_id: int) -> bool:
        """Whether one more failure would lose the stripe's data."""
        stripe = self.stripes[stripe_id]
        return self.failed_count(stripe_id) >= stripe.code.fault_tolerance()

    def lost_stripes(self) -> List[int]:
        """Sorted ids of stripes that have lost data."""
        return sorted(self._lost_stripes)
