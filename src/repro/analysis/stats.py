"""Cross-trial statistics for the parallel experiment engine.

One runtime trial reduces to a flat metric summary; a *matrix* of trials
needs the cross-trial reductions the paper's evaluation lacks -- means with
confidence intervals instead of single-draw point estimates.  These helpers
are deliberately dependency-free (a small Student-t table instead of scipy)
and deterministic: the same sample list always reduces to the same floats,
which is what lets the experiment engine promise byte-identical aggregated
tables for any worker count.

``NaN`` samples are treated as "metric undefined for this trial" (for
example MTTR when a scaled-down trace contains no permanent failure) and are
excluded from the reductions; a summary whose samples are all ``NaN``
reduces to ``NaN``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30).
#: Beyond 30 degrees of freedom the normal approximation (1.96) is used.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value (normal approx. past df=30)."""
    if degrees_of_freedom <= 0:
        raise ValueError("degrees_of_freedom must be positive")
    if degrees_of_freedom <= len(_T_95):
        return _T_95[degrees_of_freedom - 1]
    return 1.96


def _finite(samples: Sequence[float]) -> List[float]:
    return [s for s in samples if not math.isnan(s)]


def sample_mean(samples: Sequence[float]) -> float:
    """Mean of the non-NaN samples; ``nan`` when none remain."""
    finite = _finite(samples)
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


def sample_std(samples: Sequence[float]) -> float:
    """Unbiased (n-1) standard deviation of the non-NaN samples.

    Returns 0.0 for a single sample (no spread information) and ``nan`` for
    an empty sample set.
    """
    finite = _finite(samples)
    if not finite:
        return math.nan
    if len(finite) == 1:
        return 0.0
    mean = sum(finite) / len(finite)
    variance = sum((s - mean) ** 2 for s in finite) / (len(finite) - 1)
    return math.sqrt(variance)


def confidence_halfwidth_95(samples: Sequence[float]) -> float:
    """Half-width of the two-sided 95% CI of the mean (Student-t).

    0.0 for a single sample, ``nan`` for an empty sample set -- so
    ``mean +/- halfwidth`` is always printable.
    """
    finite = _finite(samples)
    if not finite:
        return math.nan
    if len(finite) == 1:
        return 0.0
    std = sample_std(finite)
    return t_critical_95(len(finite) - 1) * std / math.sqrt(len(finite))


@dataclass(frozen=True)
class MetricStats:
    """Cross-trial reduction of one metric.

    Attributes
    ----------
    mean, std, ci95:
        Mean, unbiased standard deviation, and 95% CI half-width over the
        trials where the metric was defined (non-NaN).
    minimum, maximum:
        Range over the defined trials.
    samples:
        Number of trials where the metric was defined.
    """

    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float
    samples: int

    def format_mean_ci(self, digits: int = 3) -> str:
        """Render as ``mean+/-ci`` (or ``-`` when undefined) for tables."""
        if math.isnan(self.mean):
            return "-"
        if math.isinf(self.mean):
            return "inf" if self.mean > 0 else "-inf"
        return f"{self.mean:.{digits}f}+/-{self.ci95:.{digits}f}"


def reduce_metric(samples: Sequence[float]) -> MetricStats:
    """Reduce one metric's per-trial samples to :class:`MetricStats`."""
    finite = _finite(samples)
    if not finite:
        return MetricStats(math.nan, math.nan, math.nan, math.nan, math.nan, 0)
    return MetricStats(
        mean=sample_mean(finite),
        std=sample_std(finite),
        ci95=confidence_halfwidth_95(finite),
        minimum=min(finite),
        maximum=max(finite),
        samples=len(finite),
    )


def reduce_summaries(
    summaries: Sequence[Mapping[str, float]],
) -> Dict[str, MetricStats]:
    """Reduce per-trial metric summaries key-by-key.

    Every summary must have the same keys (they come from
    :meth:`repro.runtime.MetricsCollector.summary`, whose key set is fixed);
    the output dict preserves the key order of the first summary so the
    aggregation layer renders deterministic tables.
    """
    if not summaries:
        raise ValueError("at least one summary is required")
    keys = list(summaries[0])
    for summary in summaries[1:]:
        if list(summary) != keys:
            raise ValueError("summaries disagree on their metric keys")
    return {key: reduce_metric([s[key] for s in summaries]) for key in keys}
