"""Figure 10(a): HDFS-RAID single-block repair time versus coding parameters.

Compares HDFS-RAID's original repair path (reads through the HDFS routine,
per-helper connection setup) against conventional repair and repair
pipelining executed by ECPipe helpers (native-file-system reads).
Observations to reproduce: moving the repair logic to ECPipe alone shaves up
to ~22% off conventional repair, and repair pipelining reduces the
single-block repair time by ~83-91% across (9,6)..(16,12).
"""

from repro.bench import ExperimentTable, reduction_percent, single_block_request, standard_cluster
from repro.codes import RSCode
from repro.storage import HDFSRaid

CODING_PARAMS = [(9, 6), (12, 8), (14, 10), (16, 12)]
NODES = [f"node{i}" for i in range(17)]


def run_experiment():
    """Regenerate the Figure 10(a) series; returns the result table."""
    cluster = standard_cluster()
    table = ExperimentTable(
        "Figure 10(a): HDFS-RAID single-block repair time (s) vs (n,k)",
        ["n", "k", "hdfs_raid", "ecpipe_conventional", "ecpipe_rp",
         "rp_vs_original_%", "ecpipe_conv_vs_original_%"],
    )
    for n, k in CODING_PARAMS:
        system = HDFSRaid(NODES, code=RSCode(n, k))
        request = single_block_request(system.code)
        original = system.original_repair_scheme().repair_time(request, cluster).makespan
        conventional = system.ecpipe_conventional_scheme().repair_time(request, cluster).makespan
        rp = system.ecpipe_pipelining_scheme().repair_time(request, cluster).makespan
        table.add_row(
            n, k, original, conventional, rp,
            reduction_percent(original, rp),
            reduction_percent(original, conventional),
        )
    return table


def test_fig10a_hdfs_raid(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()
    for row in table.as_dicts():
        # paper: 82.7-91.2% reduction of the single-block repair time
        assert float(row["rp_vs_original_%"]) > 80.0
        # moving repair into ECPipe alone helps, but far less than pipelining
        assert 0.0 < float(row["ecpipe_conv_vs_original_%"]) < 35.0


if __name__ == "__main__":
    run_experiment().show()
