"""Partial-parallel repair (PPR).

PPR (Mitra et al., EuroSys'16) exploits the linearity of erasure codes to
spread repair traffic over the helpers' links: helpers combine partial
results pairwise in a binary-tree fashion, so a single-block repair finishes
in ``ceil(log2(k+1))`` timeslots instead of conventional repair's ``k``
(section 2.2 and Figure 2(b) of the paper).

The implementation mirrors the paper's evaluation setup: PPR is realised in
the same framework as repair pipelining "by only changing the transmission
flow of data during a repair" (section 5.2).  Transfers are sliced at the
same slice size as repair pipelining for a fair per-request-overhead
comparison, but an aggregating helper forwards its partial result only after
it has received and combined the *whole* partial block from each child --
PPR's partial operations are block-granular, which is why its repair time
stays logarithmic in ``k`` rather than dropping to a single timeslot.

PPR does not define a multi-block repair (the paper notes this is
unexplored), so requests with more than one failed block are rejected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.planner import RepairScheme, TaskEmitter
from repro.core.request import RepairRequest
from repro.sim.tasks import Task, TaskGraph


class PPRRepair(RepairScheme):
    """Partial-parallel repair for a single failed block.

    Parameters
    ----------
    helper_selector:
        Optional selector restricting which helpers participate; defaults to
        the code's own choice (the lowest-indexed available blocks).
    """

    name = "ppr"

    def __init__(self, helper_selector=None) -> None:
        self._helper_selector = helper_selector

    @staticmethod
    def num_rounds(k: int) -> int:
        """Number of aggregation rounds (``ceil(log2(k+1))``)."""
        rounds = 0
        participants = k + 1
        while participants > 1:
            participants = (participants + 1) // 2
            rounds += 1
        return rounds

    def build_graph(
        self,
        request: RepairRequest,
        cluster: Cluster,
        graph: Optional[TaskGraph] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> TaskGraph:
        if request.num_failed != 1:
            raise ValueError("PPR only supports single-block repairs")
        graph = graph if graph is not None else TaskGraph()
        emit = TaskEmitter(cluster, graph)
        code = request.stripe.code
        sid = request.stripe.stripe_id

        available = list(candidates) if candidates is not None else request.available_blocks()
        plan = code.repair_plan(request.failed, available)
        helpers = list(plan.helpers)
        if self._helper_selector is not None:
            helpers = list(
                self._helper_selector(request, cluster, available, len(plan.helpers))
            )

        requestor = request.requestors[0]
        slice_sizes = request.slice_sizes()

        # Each participant carries (node, partial-ready task).  Helpers start
        # with their locally scaled block a_i * B_i; the requestor starts
        # empty and, being last in the list, always ends up as the receiver
        # of the final round.
        participants: List[Tuple[str, Optional[Task]]] = []
        for block_index in helpers:
            node = request.stripe.location(block_index)
            read = emit.disk_read(
                node, request.block_size, name=f"s{sid}.read.b{block_index}"
            )
            scale = emit.compute(
                node,
                request.block_size,
                name=f"s{sid}.scale.b{block_index}",
                deps=[read],
            )
            participants.append((node, scale))
        participants.append((requestor, None))

        round_index = 0
        while len(participants) > 1:
            next_round: List[Tuple[str, Optional[Task]]] = []
            i = 0
            while i + 1 < len(participants):
                sender_node, sender_partial = participants[i]
                receiver_node, receiver_partial = participants[i + 1]
                deps = [sender_partial] if sender_partial is not None else []
                transfers = []
                for slice_index, slice_bytes in enumerate(slice_sizes):
                    transfer = emit.transfer(
                        sender_node,
                        receiver_node,
                        slice_bytes,
                        name=f"s{sid}.r{round_index}.send.{slice_index}",
                        deps=deps,
                    )
                    if transfer is not None:
                        transfers.append(transfer)
                combine_deps = list(transfers) if transfers else list(deps)
                if receiver_partial is not None:
                    combine_deps.append(receiver_partial)
                combine = emit.compute(
                    receiver_node,
                    request.block_size,
                    name=f"s{sid}.r{round_index}.combine",
                    deps=combine_deps,
                )
                next_round.append((receiver_node, combine))
                i += 2
            if i < len(participants):
                next_round.append(participants[i])
            participants = next_round
            round_index += 1
        return graph
