"""Property-based tests of the GF(2^8) field and matrix invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GFMatrix, gf_add, gf_div, gf_inv, gf_mul, gf_mulsum_bytes, vandermonde_matrix
from repro.gf.gf256 import gf_mul_bytes

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)
payloads = st.binary(min_size=1, max_size=64)


@given(elements, elements)
def test_addition_commutes(a, b):
    assert gf_add(a, b) == gf_add(b, a)


@given(elements, elements)
def test_multiplication_commutes(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elements, elements, elements)
def test_addition_associates(a, b, c):
    assert gf_add(gf_add(a, b), c) == gf_add(a, gf_add(b, c))


@given(elements, elements, elements)
def test_multiplication_associates(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(elements, elements, elements)
def test_distributivity(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(elements)
def test_self_addition_is_zero(a):
    assert gf_add(a, a) == 0


@given(nonzero)
def test_inverse_property(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elements, nonzero)
def test_div_mul_roundtrip(a, b):
    assert gf_mul(gf_div(a, b), b) == a


@given(nonzero, payloads)
def test_mul_bytes_invertible(coeff, data):
    forward = gf_mul_bytes(coeff, data)
    backward = gf_mul_bytes(gf_inv(coeff), forward.tobytes())
    assert backward.tobytes() == data


@given(elements, elements, payloads)
def test_mulsum_linearity(c1, c2, data):
    combined = gf_mulsum_bytes([gf_add(c1, c2)], [data])
    split = gf_mulsum_bytes([c1, c2], [data, data])
    assert combined.tobytes() == split.tobytes()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_vandermonde_top_square_inverts(size):
    matrix = vandermonde_matrix(size, size)
    assert matrix.matmul(matrix.invert()).is_identity()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.lists(elements, min_size=3, max_size=3), min_size=2, max_size=2),
)
def test_matmul_distributes_over_row_selection(rows):
    matrix = GFMatrix(rows + [[1, 0, 0]])
    other = vandermonde_matrix(3, 3)
    product = matrix.matmul(other)
    for index in range(matrix.num_rows):
        assert product.row(index) == matrix.select_rows([index]).matmul(other).row(0)
